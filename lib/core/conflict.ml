open Relational
open Graphs

(* Per-FD index of the live tuples, grouped by their left-hand-side
   projection: two tuples can only conflict w.r.t. an FD when they fall in
   the same group, so a delta tuple is compared against its groups only,
   never against the whole instance. The maps are persistent, so a delta
   application shares all untouched groups with its predecessor (and undo
   can keep old snapshots alive at no cost). *)
module Kmap = Map.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

(* Tuple -> vertex id. Persistent for the same reason: a delta touches
   O(batch log n) nodes instead of copying the whole index. *)
module Tmap = Map.Make (Tuple)

type group_index = {
  fd : Constraints.Fd.t;
  lpos : int list;  (* positions of the FD's lhs in the schema *)
  members : Vset.t Kmap.t;  (* lhs projection -> live vertices *)
}

type t = {
  fds : Constraints.Fd.t list;
  relation : Relation.t;  (* the live instance *)
  tuples : Tuple.t array;  (* vertex id -> tuple; keeps tombstoned slots *)
  live : Vset.t;  (* vertex ids that are part of the instance *)
  graph : Undirected.t;
  index : int Tmap.t;  (* live tuples only *)
  groups : group_index list;
}

let lhs_positions schema fd =
  List.map
    (fun a ->
      match Schema.position schema a with
      | Some i -> i
      | None -> invalid_arg "Conflict: FD attribute missing from schema")
    (Constraints.Fd.lhs fd)

let group_key lpos t = Tuple.project t lpos

let group_add g v t =
  let key = group_key g.lpos t in
  let members =
    Kmap.update key
      (fun s -> Some (Vset.add v (Option.value s ~default:Vset.empty)))
      g.members
  in
  { g with members }

let group_remove g v t =
  let key = group_key g.lpos t in
  let members =
    Kmap.update key
      (function
        | None -> None
        | Some s ->
          let s = Vset.remove v s in
          if Vset.is_empty s then None else Some s)
      g.members
  in
  { g with members }

let build fds relation =
  Obs.Span.with_span "conflict.build"
    ~args:[ ("tuples", Obs.Event.Int (Relation.cardinality relation)) ]
  @@ fun () ->
  let schema = Relation.schema relation in
  (match Constraints.Fd.wf_all schema fds with
  | Ok () -> ()
  | Error e -> invalid_arg e);
  let tuples = Relation.tuple_array relation in
  let n = Array.length tuples in
  let index = ref Tmap.empty in
  Array.iteri (fun i t -> index := Tmap.add t i !index) tuples;
  let index = !index in
  let edge_of_pair (t1, t2) =
    (Tmap.find t1 index, Tmap.find t2 index)
  in
  let edges =
    List.concat_map
      (fun fd ->
        List.map edge_of_pair (Constraints.Fd.violations schema fd relation))
      fds
  in
  let groups =
    List.map
      (fun fd ->
        let lpos = lhs_positions schema fd in
        let members =
          Array.to_seq tuples
          |> Seq.mapi (fun i t -> (i, t))
          |> Seq.fold_left
               (fun acc (i, t) ->
                 Kmap.update (group_key lpos t)
                   (fun s ->
                     Some (Vset.add i (Option.value s ~default:Vset.empty)))
                   acc)
               Kmap.empty
        in
        { fd; lpos; members })
      fds
  in
  if Obs.Span.enabled () then
    Obs.Span.annotate [ ("edges", Obs.Event.Int (List.length edges)) ];
  {
    fds;
    relation;
    tuples;
    live = Vset.of_range n;
    graph = Undirected.create n edges;
    index;
    groups;
  }

let schema c = Relation.schema c.relation
let fds c = c.fds
let relation c = c.relation
let graph c = c.graph
let size c = Array.length c.tuples
let live c = c.live
let is_live c v = Vset.mem v c.live

let tuple c i =
  if i < 0 || i >= size c then invalid_arg "Conflict.tuple: out of range";
  c.tuples.(i)

let tuples c = Array.copy c.tuples
let index c t = Tmap.find_opt t c.index

let index_exn c t =
  match index c t with
  | Some i -> i
  | None ->
    invalid_arg
      (Printf.sprintf "tuple %s is not part of the instance" (Tuple.to_string t))

let vset_of_relation c r =
  Relation.fold (fun t acc -> Vset.add (index_exn c t) acc) r Vset.empty

let relation_of_vset c s =
  Relation.of_tuples (schema c)
    (List.map (fun i -> tuple c i) (Vset.elements s))

let is_consistent c = Undirected.edge_count c.graph = 0

let conflicting_fds c i j =
  let t1 = tuple c i and t2 = tuple c j in
  List.filter (fun fd -> Constraints.Fd.conflicting (schema c) fd t1 t2) c.fds

let neighbors c i = Undirected.neighbors c.graph i
let vicinity c i = Undirected.vicinity c.graph i

let conflict_pairs c =
  List.map (fun (i, j) -> (tuple c i, tuple c j)) (Undirected.edges c.graph)

(* --- the delta path -------------------------------------------------------- *)

type delta = {
  inserted : int list;
  deleted : int list;
  edges_added : (int * int) list;
  edges_removed : (int * int) list;
}

(* Conflict edges between a tuple and the live members of its FD groups —
   the incremental counterpart of [Constraints.Fd.violations]. Cost is the
   total size of the groups the tuple falls in, not the instance size. *)
let edges_of_tuple c groups v t =
  let schema = schema c in
  List.fold_left
    (fun acc g ->
      match Kmap.find_opt (group_key g.lpos t) g.members with
      | None -> acc
      | Some members ->
        Vset.fold
          (fun u acc ->
            if u <> v && Constraints.Fd.conflicting schema g.fd t c.tuples.(u)
            then (min u v, max u v) :: acc
            else acc)
          members acc)
    [] groups

let apply_delta c ~insert ~delete =
  Obs.Span.with_span "conflict.apply_delta"
    ~args:
      [
        ("insert", Obs.Event.Int (List.length insert));
        ("delete", Obs.Event.Int (List.length delete));
      ]
  @@ fun () ->
  let schema = schema c in
  (* validate the batch up front, so a rejected delta leaves no trace *)
  let rec validate_deletes seen = function
    | [] -> Ok ()
    | t :: rest ->
      if not (Relation.mem c.relation t) then
        Error
          (Printf.sprintf "delete: tuple %s is not part of the instance"
             (Tuple.to_string t))
      else if List.exists (Tuple.equal t) seen then
        Error
          (Printf.sprintf "delete: tuple %s listed twice" (Tuple.to_string t))
      else validate_deletes (t :: seen) rest
  in
  let rec validate_inserts seen = function
    | [] -> Ok ()
    | t :: rest ->
      if not (Tuple.conforms schema t) then
        Error
          (Printf.sprintf "insert: tuple %s does not conform to schema %s"
             (Tuple.to_string t) (Schema.name schema))
      else if
        Relation.mem c.relation t && not (List.exists (Tuple.equal t) delete)
      then
        Error
          (Printf.sprintf "insert: tuple %s is already in the instance"
             (Tuple.to_string t))
      else if List.exists (Tuple.equal t) seen then
        Error
          (Printf.sprintf "insert: tuple %s listed twice" (Tuple.to_string t))
      else validate_inserts (t :: seen) rest
  in
  match
    match validate_deletes [] delete with
    | Error _ as e -> e
    | Ok () -> validate_inserts [] insert
  with
  | Error _ as e -> e
  | Ok () ->
    (* tombstone the deletions: ids stay allocated, edges fall away *)
    let deleted = List.map (index_exn c) delete in
    let deleted_set = Vset.of_list deleted in
    let edges_removed =
      List.sort_uniq compare
        (List.concat_map
           (fun v ->
             Vset.fold
               (fun u acc -> (min u v, max u v) :: acc)
               (Undirected.neighbors c.graph v)
               [])
           deleted)
    in
    let groups =
      List.fold_left
        (fun groups v ->
          List.map (fun g -> group_remove g v c.tuples.(v)) groups)
        c.groups deleted
    in
    (* append the insertions, probing the group indexes for new edges *)
    let n = Array.length c.tuples in
    let tuples' = Array.append c.tuples (Array.of_list insert) in
    let c_probe = { c with tuples = tuples' } in
    let inserted, groups, edges_added =
      List.fold_left
        (fun (ids, groups, edges) t ->
          let v = n + List.length ids in
          let edges =
            List.rev_append (edges_of_tuple c_probe groups v t) edges
          in
          (v :: ids, List.map (fun g -> group_add g v t) groups, edges))
        ([], groups, []) insert
    in
    let inserted = List.rev inserted in
    let edges_added =
      (* edges to deleted vertices can not arise: their group entries are
         gone before any probe *)
      List.sort_uniq compare edges_added
    in
    let index' =
      List.fold_left2
        (fun m v t -> Tmap.add t v m)
        (List.fold_left (fun m t -> Tmap.remove t m) c.index delete)
        inserted insert
    in
    let relation' =
      List.fold_left Relation.add
        (List.fold_left Relation.remove c.relation delete)
        insert
    in
    let live' =
      List.fold_left
        (fun s v -> Vset.add v s)
        (Vset.diff c.live deleted_set)
        inserted
    in
    let c' =
      {
        c with
        relation = relation';
        tuples = tuples';
        live = live';
        graph =
          Undirected.patch c.graph
            ~n:(Array.length tuples')
            ~drop:deleted_set ~add:edges_added;
        index = index';
        groups;
      }
    in
    if Obs.Span.enabled () then
      Obs.Span.annotate
        [
          ("edges_added", Obs.Event.Int (List.length edges_added));
          ("edges_removed", Obs.Event.Int (List.length edges_removed));
        ];
    Ok (c', { inserted; deleted; edges_added; edges_removed })

let pp ppf c =
  Format.fprintf ppf "@[<v>conflict graph of %a with {%a}:@,"
    Schema.pp (schema c)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Constraints.Fd.pp)
    c.fds;
  Array.iteri
    (fun i t ->
      if Vset.mem i c.live then
        Format.fprintf ppf "  t%d = %a@," i Tuple.pp t)
    c.tuples;
  List.iter
    (fun (i, j) -> Format.fprintf ppf "  t%d -- t%d@," i j)
    (Undirected.edges c.graph);
  Format.fprintf ppf "@]"
