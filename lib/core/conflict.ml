open Relational
open Graphs

(* Vertex ids ARE the relation's fact ids: the instance is the
   id-addressed store of {!Relational.Relation}, and this module keeps no
   tuple -> vertex map of its own. FD grouping — two tuples can only
   conflict when they agree on the FD's left-hand side — rides on the
   relation's per-column postings: for a single-attribute lhs the groups
   are exactly the postings entries, for a wider lhs candidates are the
   intersection of one postings probe per lhs column. The postings are
   forced at {!build} and maintained incrementally by [Relation.patch],
   so a delta tuple is compared against its groups only, never against
   the whole instance. *)

type t = {
  fds : Constraints.Fd.t list;
  lposs : (Constraints.Fd.t * int list) list;
      (* each FD with the positions of its lhs in the schema *)
  relation : Relation.t; (* fact id = vertex id; tombstones = dead vertices *)
  graph : Undirected.t;
}

let lhs_positions schema fd =
  List.map
    (fun a ->
      match Schema.position schema a with
      | Some i -> i
      | None -> invalid_arg "Conflict: FD attribute missing from schema")
    (Constraints.Fd.lhs fd)

let schema c = Relation.schema c.relation
let fds c = c.fds
let relation c = c.relation
let graph c = c.graph
let size c = Relation.slot_count c.relation
let live c = Relation.live_ids c.relation
let is_live c v = Vset.mem v (Relation.live_ids c.relation)

let tuple c i =
  if i < 0 || i >= size c then invalid_arg "Conflict.tuple: out of range";
  Relation.fact c.relation i

let tuples c = Array.init (size c) (Relation.fact c.relation)
let index c t = Relation.find c.relation t
let index_exn c t = Relation.find_exn c.relation t

(* Live vertices agreeing with [t] on every position of [lpos]: one
   postings probe per column, intersected smallest-first by [Vset]. *)
let candidates rel lpos t =
  match lpos with
  | [] -> Relation.live_ids rel
  | col :: rest ->
    List.fold_left
      (fun acc col -> Vset.inter acc (Relation.matching rel col (Tuple.packed_get t col)))
      (Relation.matching rel col (Tuple.packed_get t col))
      rest

let build fds relation =
  Obs.Span.with_span "conflict.build"
    ~args:[ ("tuples", Obs.Event.Int (Relation.cardinality relation)) ]
  @@ fun () ->
  let schema = Relation.schema relation in
  (match Constraints.Fd.wf_all schema fds with
  | Ok () -> ()
  | Error e -> invalid_arg e);
  let lposs = List.map (fun fd -> (fd, lhs_positions schema fd)) fds in
  (* force the lhs postings only: [patch] keeps materialized columns
     fresh from here on, and a column no FD groups on (a unique payload
     attribute, say) never pays for an index *)
  List.iter
    (fun (_, lpos) -> List.iter (Relation.prepare_column relation) lpos)
    lposs;
  let edges = ref [] in
  (* Within an lhs group every tuple agrees on the lhs, so a pair
     conflicts iff the two tuples differ somewhere on the rhs — iff
     their packed rhs projections differ. Bucketing the group by that
     projection and emitting all cross-bucket pairs is O(group + edges)
     where the pairwise [Fd.conflicting] sweep was O(group²): on clean
     data (one bucket) a huge group costs nothing at all. *)
  let group_edges rpos ids =
    match ids with
    | [] | [ _ ] -> ()
    | ids ->
      let buckets = Hashtbl.create 8 in
      let order = ref [] in
      List.iter
        (fun i ->
          let key = Tuple.project_packed (Relation.fact relation i) rpos in
          match Hashtbl.find_opt buckets key with
          | None ->
            order := key :: !order;
            Hashtbl.replace buckets key [ i ]
          | Some ids -> Hashtbl.replace buckets key (i :: ids))
        ids;
      match !order with
      | [] | [ _ ] -> () (* all tuples agree on the rhs: consistent group *)
      | keys ->
        let groups =
          Array.of_list (List.rev_map (fun k -> Hashtbl.find buckets k) keys)
        in
        for a = 0 to Array.length groups - 2 do
          List.iter
            (fun u ->
              for b = a + 1 to Array.length groups - 1 do
                List.iter
                  (fun v -> edges := (min u v, max u v) :: !edges)
                  groups.(b)
              done)
            groups.(a)
        done
  in
  List.iter
    (fun (fd, lpos) ->
      let rpos =
        List.map
          (fun a ->
            match Schema.position schema a with
            | Some i -> i
            | None -> invalid_arg "Conflict: FD attribute missing from schema")
          (Constraints.Fd.rhs fd)
      in
      match lpos with
      | [ col ] ->
        Relation.iter_groups relation col (fun _key ids ->
            group_edges rpos (Vset.elements ids))
      | _ ->
        let tbl = Hashtbl.create 256 in
        Vset.iter
          (fun i ->
            let key = Tuple.project_packed (Relation.fact relation i) lpos in
            Hashtbl.replace tbl key
              (i :: Option.value (Hashtbl.find_opt tbl key) ~default:[]))
          (Relation.live_ids relation);
        Hashtbl.iter (fun _key ids -> group_edges rpos (List.rev ids)) tbl)
    lposs;
  let edges = !edges in
  if Obs.Span.enabled () then
    Obs.Span.annotate [ ("edges", Obs.Event.Int (List.length edges)) ];
  {
    fds;
    lposs;
    relation;
    graph = Undirected.create (Relation.slot_count relation) edges;
  }

let vset_of_relation c r =
  Relation.fold (fun t acc -> Vset.add (index_exn c t) acc) r Vset.empty

let relation_of_vset c s =
  Relation.of_tuples (schema c)
    (List.map (fun i -> tuple c i) (Vset.elements s))

let is_consistent c = Undirected.edge_count c.graph = 0

let conflicting_fds c i j =
  let t1 = tuple c i and t2 = tuple c j in
  List.filter (fun fd -> Constraints.Fd.conflicting (schema c) fd t1 t2) c.fds

let neighbors c i = Undirected.neighbors c.graph i
let vicinity c i = Undirected.vicinity c.graph i

let conflict_pairs c =
  List.map (fun (i, j) -> (tuple c i, tuple c j)) (Undirected.edges c.graph)

(* --- the delta path -------------------------------------------------------- *)

type delta = {
  inserted : int list;
  deleted : int list;
  edges_added : (int * int) list;
  edges_removed : (int * int) list;
}

let apply_delta c ~insert ~delete =
  Obs.Span.with_span "conflict.apply_delta"
    ~args:
      [
        ("insert", Obs.Event.Int (List.length insert));
        ("delete", Obs.Event.Int (List.length delete));
      ]
  @@ fun () ->
  let schema = schema c in
  (* validate the batch up front, so a rejected delta leaves no trace *)
  let rec validate_deletes seen = function
    | [] -> Ok ()
    | t :: rest ->
      if not (Relation.mem c.relation t) then
        Error
          (Printf.sprintf "delete: tuple %s is not part of the instance"
             (Tuple.to_string t))
      else if List.exists (Tuple.equal t) seen then
        Error
          (Printf.sprintf "delete: tuple %s listed twice" (Tuple.to_string t))
      else validate_deletes (t :: seen) rest
  in
  let rec validate_inserts seen = function
    | [] -> Ok ()
    | t :: rest ->
      if not (Tuple.conforms schema t) then
        Error
          (Printf.sprintf "insert: tuple %s does not conform to schema %s"
             (Tuple.to_string t) (Schema.name schema))
      else if
        Relation.mem c.relation t && not (List.exists (Tuple.equal t) delete)
      then
        Error
          (Printf.sprintf "insert: tuple %s is already in the instance"
             (Tuple.to_string t))
      else if List.exists (Tuple.equal t) seen then
        Error
          (Printf.sprintf "insert: tuple %s listed twice" (Tuple.to_string t))
      else validate_inserts (t :: seen) rest
  in
  match
    match validate_deletes [] delete with
    | Error _ as e -> e
    | Ok () -> validate_inserts [] insert
  with
  | Error _ as e -> e
  | Ok () ->
    (* the store tombstones deletions and appends insertions under fresh
       ids; its postings move in the same step, so the probes below see
       exactly the post-delta live instance *)
    let relation', deleted, inserted =
      Relation.patch c.relation ~delete ~insert
    in
    let deleted_set = Vset.of_list deleted in
    let edges_removed =
      List.sort_uniq compare
        (List.concat_map
           (fun v ->
             Vset.fold
               (fun u acc -> (min u v, max u v) :: acc)
               (Undirected.neighbors c.graph v)
               [])
           deleted)
    in
    (* new conflicts all touch an inserted tuple: probe its lhs groups *)
    let edges_added =
      List.sort_uniq compare
        (List.concat_map
           (fun (v, t) ->
             List.fold_left
               (fun acc (fd, lpos) ->
                 Vset.fold
                   (fun u acc ->
                     if
                       u <> v
                       && Constraints.Fd.conflicting schema fd t
                            (Relation.fact relation' u)
                     then (min u v, max u v) :: acc
                     else acc)
                   (candidates relation' lpos t)
                   acc)
               [] c.lposs)
           (List.combine inserted insert))
    in
    let c' =
      {
        c with
        relation = relation';
        graph =
          Undirected.patch c.graph
            ~n:(Relation.slot_count relation')
            ~drop:deleted_set ~add:edges_added;
      }
    in
    if Obs.Span.enabled () then
      Obs.Span.annotate
        [
          ("edges_added", Obs.Event.Int (List.length edges_added));
          ("edges_removed", Obs.Event.Int (List.length edges_removed));
        ];
    Ok (c', { inserted; deleted; edges_added; edges_removed })

let pp ppf c =
  Format.fprintf ppf "@[<v>conflict graph of %a with {%a}:@,"
    Schema.pp (schema c)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Constraints.Fd.pp)
    c.fds;
  for i = 0 to size c - 1 do
    if is_live c i then
      Format.fprintf ppf "  t%d = %a@," i Tuple.pp (Relation.fact c.relation i)
  done;
  List.iter
    (fun (i, j) -> Format.fprintf ppf "  t%d -- t%d@," i j)
    (Undirected.edges c.graph);
  Format.fprintf ppf "@]"
