open Relational
open Graphs

type certainty = Certainly_true | Certainly_false | Ambiguous

let certainty_to_string = function
  | Certainly_true -> "certainly true"
  | Certainly_false -> "certainly false"
  | Ambiguous -> "ambiguous"

let evaluate_in_repair c r' q =
  Planner.Engine.holds_relation (Repair.to_relation c r') q

exception Empty_family of Family.name

(* Streaming: the repair enumeration stops at the first counterexample
   instead of materializing [Family.repairs] as a full list. The [seen]
   flag distinguishes "all enumerated repairs satisfy Q" from "nothing
   was enumerated at all": the latter violates P1 and must not pass as a
   (vacuously true) consistent answer. [Family.for_all] alone cannot tell
   the two apart. *)
let consistent_answer family c p q =
  let seen = ref false in
  let ok =
    Family.for_all family c p (fun r' ->
        seen := true;
        evaluate_in_repair c r' q)
  in
  if ok && not !seen then raise (Empty_family family);
  ok

exception Mixed

let certainty family c p q =
  Obs.Span.with_span "cqa.enumerate"
    ~args:[ ("family", Obs.Event.Str (Family.name_to_string family)) ]
  @@ fun () ->
  (* One pass: remember the first repair's verdict and bail out the
     moment a repair disagrees with it. *)
  let first = ref None in
  try
    Family.iter family c p (fun r' ->
        let b = evaluate_in_repair c r' q in
        match !first with
        | None -> first := Some b
        | Some b0 -> if b0 <> b then raise Mixed);
    match !first with
    | None -> raise (Empty_family family)
    | Some true -> Certainly_true
    | Some false -> Certainly_false
  with Mixed -> Ambiguous

let consistent_answers_open family c p q =
  match Family.repairs family c p with
  | [] -> raise (Empty_family family)
  | r0 :: rest ->
    let free, first =
      Planner.Engine.answers_relation (Repair.to_relation c r0) q
    in
    (* Intersect per-repair answer sets through a hashtable on the rows
       of the smaller side — keyed on packed rows (int lists), so hashing
       and equality never touch strings; evaluation stops early once the
       running intersection is empty. *)
    let key row = List.map Value.pack row in
    let inter rows r' =
      if rows = [] then []
      else begin
        let _, rows' =
          Planner.Engine.answers_relation (Repair.to_relation c r') q
        in
        let present = Hashtbl.create (List.length rows') in
        List.iter (fun row -> Hashtbl.replace present (key row) ()) rows';
        List.filter (fun row -> Hashtbl.mem present (key row)) rows
      end
    in
    (free, List.fold_left inter first rest)

(* --- the polynomial ground algorithm ----------------------------------- *)

let demand_of_clause c clause =
  Ground.of_clause
    ~rel_name:(Schema.name (Conflict.schema c))
    ~index:(Conflict.index c) clause

(* Is there a repair containing [required] and avoiding [forbidden]?
   Equivalent (by greedy completion within r \ forbidden) to: an
   independent S ⊇ required, S ∩ forbidden = ∅, where every forbidden
   vertex has a neighbour in S. Blockers are chosen per forbidden vertex
   with backtracking. *)
let demand_satisfiable c { Ground.required; forbidden } =
  let g = Conflict.graph c in
  if not (Vset.disjoint required forbidden) then false
  else if not (Undirected.is_independent g required) then false
  else begin
    let needs_blocker =
      Vset.filter
        (fun b -> Vset.disjoint (Undirected.neighbors g b) required)
        forbidden
    in
    (* A fresh blocker must keep S = required ∪ chosen independent and
       stay clear of the forbidden set. Vertices already in [chosen] are
       handled by the "already blocked" pre-check below. *)
    let compatible chosen v =
      (not (Vset.mem v forbidden))
      && (not (Vset.mem v chosen))
      && Vset.disjoint (Undirected.neighbors g v) required
      && Vset.disjoint (Undirected.neighbors g v) chosen
    in
    let rec assign chosen = function
      | [] -> true
      | b :: rest ->
        (* b may already be blocked by a previously chosen blocker. *)
        if not (Vset.disjoint (Undirected.neighbors g b) chosen) then
          assign chosen rest
        else
          Vset.exists
            (fun v -> compatible chosen v && assign (Vset.add v chosen) rest)
            (Undirected.neighbors g b)
    in
    assign Vset.empty (Vset.elements needs_blocker)
  end

let some_repair_satisfies c q =
  match Query.Transform.ground_dnf q with
  | Error e -> Error e
  | Ok clauses ->
    let clause_ok clause =
      match demand_of_clause c clause with
      | Error e -> Error e
      | Ok None -> Ok false
      | Ok (Some d) -> Ok (demand_satisfiable c d)
    in
    List.fold_left
      (fun acc clause ->
        match acc with
        | Error _ | Ok true -> acc
        | Ok false -> clause_ok clause)
      (Ok false) clauses

let ground_certainty c q =
  if not (Query.Ast.is_ground q) then
    Error "ground_certainty: query is not ground"
  else
    Obs.Span.with_span "cqa.ground" @@ fun () ->
    match some_repair_satisfies c (Query.Ast.Not q) with
    | Error e -> Error e
    | Ok false -> Ok Certainly_true
    | Ok true -> (
      match some_repair_satisfies c q with
      | Error e -> Error e
      | Ok false -> Ok Certainly_false
      | Ok true -> Ok Ambiguous)

let ground_consistent_answer c q =
  match ground_certainty c q with
  | Error e -> Error e
  | Ok cert -> Ok (cert = Certainly_true)
