open Graphs

type t = Digraph.t

type error = Not_conflicting of int * int | Cyclic

let error_to_string = function
  | Not_conflicting (u, v) ->
    Printf.sprintf
      "priority arc %d > %d does not connect conflicting tuples" u v
  | Cyclic -> "priority relation is cyclic"

let empty h = Digraph.create (Hyper.size h) []

let validate h g =
  let bad =
    List.find_opt
      (fun (u, v) -> not (Hyper.conflicting h u v))
      (Digraph.arcs g)
  in
  match bad with
  | Some (u, v) -> Error (Not_conflicting (u, v))
  | None -> if Digraph.has_cycle g then Error Cyclic else Ok g

let of_arcs h arcs = validate h (Digraph.create (Hyper.size h) arcs)

let of_arcs_exn h arcs =
  match of_arcs h arcs with
  | Ok p -> p
  | Error e -> invalid_arg (error_to_string e)

let of_tuple_pairs h pairs =
  of_arcs h
    (List.map
       (fun (x, y) -> (Hyper.index_exn h x, Hyper.index_exn h y))
       pairs)

let arcs = Digraph.arcs
let arc_count = Digraph.arc_count
let dominates p x y = Digraph.mem_arc p x y
let dominators p y = Digraph.pred p y
let dominated p x = Digraph.succ p x

let oriented p u v = dominates p u v || dominates p v u

(* Conflicting pairs = unordered pairs inside a hyperedge; edges are
   small (bounded by the widest constraint), so this is linear in the
   edge store. *)
let conflicting_pairs h =
  List.sort_uniq compare
    (List.concat_map
       (fun e ->
         let vs = Vset.elements e in
         List.concat_map
           (fun u -> List.filter_map (fun v -> if u < v then Some (u, v) else None) vs)
           vs)
       (Hypergraph.edges (Hyper.hypergraph h)))

let unoriented h p =
  List.filter (fun (u, v) -> not (oriented p u v)) (conflicting_pairs h)

(* Orient the conflicting pairs by a tuple-level rule, exactly as
   {!Pref_rules.orient} does on the binary graph: an arc only where the
   rule holds one way and not the other. *)
let of_rule h rule =
  let arcs =
    List.concat_map
      (fun (u, v) ->
        let x = Hyper.tuple h u and y = Hyper.tuple h v in
        let xy = rule x y and yx = rule y x in
        if xy && not yx then [ (u, v) ]
        else if yx && not xy then [ (v, u) ]
        else [])
      (conflicting_pairs h)
  in
  match of_arcs h arcs with
  | Ok p -> Ok p
  | Error e -> Error (error_to_string e)

let is_total h p = unoriented h p = []

let extend h p new_arcs = of_arcs h (new_arcs @ Digraph.arcs p)

let totalize h p =
  let order =
    match Digraph.topological_order p with
    | Some order -> order
    | None -> assert false (* valid priorities are acyclic *)
  in
  let rank = Array.make (Hyper.size h) 0 in
  List.iteri (fun i v -> rank.(v) <- i) order;
  let new_arcs =
    List.map
      (fun (u, v) -> if rank.(u) < rank.(v) then (u, v) else (v, u))
      (unoriented h p)
  in
  match extend h p new_arcs with
  | Ok p' -> p'
  | Error _ -> assert false (* arcs follow a linear order: acyclic *)

let update h p ~dropped ~oriented =
  Obs.Span.with_span "hpriority.update"
    ~args:
      [
        ("dropped", Obs.Event.Int (Vset.cardinal dropped));
        ("oriented", Obs.Event.Int (List.length oriented));
      ]
  @@ fun () ->
  (* Unlike the binary case, a kept arc can lose its footing without
     losing an endpoint: the hyperedge it lives on dies through a THIRD
     vertex. So surviving arcs are re-checked against the updated
     hypergraph, not just filtered by endpoint. *)
  let kept =
    List.filter
      (fun (u, v) ->
        (not (Vset.mem u dropped || Vset.mem v dropped))
        && Hyper.conflicting h u v)
      (Digraph.arcs p)
  in
  match oriented with
  | [] ->
    (* a subgraph of an acyclic graph is acyclic, and [kept] was just
       revalidated against the updated hypergraph *)
    Ok (Digraph.create (Hyper.size h) kept)
  | _ :: _ -> of_arcs h (oriented @ kept)

let winnow p s =
  Vset.filter (fun v -> Vset.is_empty (Vset.inter (dominators p v) s)) s

let restrict p s = Digraph.restrict p s

let pp ppf p =
  Format.fprintf ppf "@[{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (u, v) -> Format.fprintf ppf "t%d > t%d" u v))
    (Digraph.arcs p)
