(** Instance-level inconsistency statistics.

    A one-stop summary of how inconsistent an instance is and how far the
    given preferences go in resolving it — the numbers a data steward
    looks at before deciding whether to clean, to query under preferred
    repairs, or to go collect more preference information. Everything is
    computed component-wise, so the summary is cheap even when the global
    repair count is astronomical. *)

type t = {
  tuples : int;
  conflict_edges : int;
  conflicting_tuples : int;  (** tuples with at least one conflict *)
  components : int;  (** connected components of the conflict graph *)
  nontrivial_components : int;  (** components with ≥ 2 tuples *)
  largest_component : int;
  oriented_edges : int;  (** conflict edges the priority orients *)
  total_priority : bool;
  repair_count : int;  (** |Rep|, component-factorized (mod native int) *)
  preferred_count : int;  (** |X-Rep| for the requested family *)
  certain : int;  (** tuples in every preferred repair *)
  disputed : int;  (** tuples in some but not all *)
  excluded : int;  (** tuples in no preferred repair *)
  cache_hits : int;  (** [Decompose] cache hits while computing this summary *)
  cache_misses : int;  (** component repair lists computed from scratch *)
  cached_repairs : int;  (** repairs materialized into the component cache *)
  deltas_applied : int;
      (** incremental updates folded into the decomposition so far *)
  components_dirtied : int;  (** components those deltas invalidated *)
  cache_evicted : int;  (** cache entries those deltas dropped *)
  cache_retained : int;  (** cache entries carried live across deltas *)
}

val compute : Family.name -> Conflict.t -> Priority.t -> t

val compute_with : Family.name -> Decompose.t -> t
(** Like {!compute} but reuses an existing decomposition and its
    component-repair cache — the cache columns then report how much of
    the summary was served from prior queries on the same [Decompose.t]. *)

val pp : Format.formatter -> t -> unit
