open Graphs

type name = Rep | L | S | G | C

let all_names = [ Rep; L; S; G; C ]

let name_to_string = function
  | Rep -> "Rep"
  | L -> "L-Rep"
  | S -> "S-Rep"
  | G -> "G-Rep"
  | C -> "C-Rep"

let name_of_string s =
  match String.lowercase_ascii s with
  | "rep" -> Some Rep
  | "l" | "l-rep" | "lrep" -> Some L
  | "s" | "s-rep" | "srep" -> Some S
  | "g" | "g-rep" | "grep" -> Some G
  | "c" | "c-rep" | "crep" -> Some C
  | _ -> None

(* G-Rep = ≪-maximal repairs; filtering the full enumeration beats a
   per-candidate witness search because the repair list is shared. *)
let globally_optimal_among all c p =
  List.filter
    (fun r' ->
      not
        (List.exists
           (fun r'' ->
             (not (Vset.equal r' r'')) && Optimality.preferred_to c p r' r'')
           all))
    all

let repairs family c p =
  match family with
  | Rep -> Repair.all c
  | L -> List.filter (Optimality.is_locally_optimal c p) (Repair.all c)
  | S -> List.filter (Optimality.is_semi_globally_optimal c p) (Repair.all c)
  | G -> globally_optimal_among (Repair.all c) c p
  | C -> Winnow.all_results c p

let repairs_relations family c p =
  List.map (Repair.to_relation c) (repairs family c p)

let check family c p candidate =
  Repair.is_repair c candidate
  &&
  match family with
  | Rep -> true
  | L -> Optimality.is_locally_optimal c p candidate
  | S -> Optimality.is_semi_globally_optimal c p candidate
  | G -> Optimality.is_globally_optimal c p candidate
  | C -> Winnow.is_result c p candidate

let check_relation family c p r =
  check family c p (Conflict.vset_of_relation c r)

(* --- streaming enumeration ---------------------------------------------- *)

(* Membership in the family of one already-enumerated repair. Unlike
   [check] this skips the maximality test (the enumerator only yields
   repairs), and for C it uses the PTIME re-run of Algorithm 1 instead of
   materializing the exponential [Winnow.all_results]. *)
let member family c p r' =
  match family with
  | Rep -> true
  | L -> Optimality.is_locally_optimal c p r'
  | S -> Optimality.is_semi_globally_optimal c p r'
  | G -> Optimality.is_globally_optimal c p r'
  | C -> Winnow.is_result c p r'

let iter family c p f =
  Repair.iter (fun r' -> if member family c p r' then f r') c

let exists family c p pred =
  Repair.exists (fun r' -> pred r' && member family c p r') c

let for_all family c p pred =
  not (exists family c p (fun r' -> not (pred r')))

let one family c p =
  match family with
  | Rep -> Some (Repair.one c)
  | C -> Some (Winnow.clean c p)
  | L | S | G -> (
    let found = ref None in
    (try
       iter family c p (fun r' ->
           found := Some r';
           raise Exit)
     with Exit -> ());
    !found)

let pp_name ppf n = Format.pp_print_string ppf (name_to_string n)
