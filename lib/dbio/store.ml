module IF = Instance_format

type t = {
  dir : string;
  wal : Wal.t;
  spec : IF.spec;
  engine : Core.Delta.t;
  torn_bytes : int;
  mutable wal_records : int;
}

let snapshot_path dir = Filename.concat dir "store.snap"
let wal_path dir = Filename.concat dir "wal.log"

let build_engine spec =
  match IF.to_rule spec with
  | Error e -> Error e
  | Ok rule -> Core.Delta.create ~rule spec.IF.fds spec.IF.relation

let unix_error = function
  | Unix.Unix_error (err, fn, arg) ->
    Error (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message err))
  | e -> raise e

(* --- init --------------------------------------------------------------- *)

let init dir spec =
  match build_engine spec with
  | Error e -> Error ("invalid instance: " ^ e)
  | Ok _ -> (
    match
      (try Unix.mkdir dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      Sys.file_exists (snapshot_path dir)
    with
    | true -> Error (Printf.sprintf "%s: store already initialized" dir)
    | exception e -> unix_error e
    | false -> (
      match Snapshot.save (snapshot_path dir) spec with
      | Error _ as e -> e
      | Ok () -> (
        match Wal.open_append (wal_path dir) with
        | Error _ as e -> e
        | Ok wal ->
          let r = Wal.truncate wal in
          Wal.close wal;
          r)))

(* --- open + replay ------------------------------------------------------ *)

let drop_torn_tail path clean_len =
  match Unix.openfile path [ Unix.O_WRONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Unix.ftruncate fd clean_len;
        Unix.fsync fd);
    Ok ()
  | exception e -> unix_error e

(* Replay brings the engine through the same entry points the original
   process used, so everything observable — fact ids, slot counter,
   history depth, decomposition caches — re-converges bit-identically. *)
let replay_entry (spec, engine) = function
  | Wal.Batch ops -> (
    match Core.Delta.apply engine ops with
    | Ok _ -> Ok (spec, engine)
    | Error e -> Error ("batch does not re-apply: " ^ e))
  | Wal.Undo -> (
    match Core.Delta.undo engine with
    | Ok _ -> Ok (spec, engine)
    | Error e -> Error ("undo does not re-apply: " ^ e))
  | Wal.Prefer p -> (
    let spec' =
      {
        spec with
        IF.prefs = spec.IF.prefs @ [ p ];
        IF.relation = Core.Delta.relation engine;
      }
    in
    match build_engine spec' with
    | Ok engine' -> Ok (spec', engine')
    | Error e -> Error ("preference does not re-apply: " ^ e))

let open_ dir =
  Obs.Span.with_span "store.open" @@ fun () ->
  match Snapshot.load (snapshot_path dir) with
  | Error _ as e -> e
  | Ok spec0 -> (
    match build_engine spec0 with
    | Error e -> Error ("snapshot does not build: " ^ e)
    | Ok engine0 -> (
      match Wal.replay (wal_path dir) with
      | Error _ as e -> e
      | Ok (entries, clean_len, torn) -> (
        let truncated =
          if torn > 0 then drop_torn_tail (wal_path dir) clean_len else Ok ()
        in
        match truncated with
        | Error _ as e -> e
        | Ok () -> (
          let rec replay acc n = function
            | [] -> Ok (acc, n)
            | entry :: rest -> (
              match replay_entry acc entry with
              | Ok acc -> replay acc (n + 1) rest
              | Error e ->
                Error (Printf.sprintf "wal record %d: %s" (n + 1) e))
          in
          match replay (spec0, engine0) 0 entries with
          | Error _ as e -> e
          | Ok ((spec, engine), replayed) -> (
            let spec = { spec with IF.relation = Core.Delta.relation engine } in
            if Obs.Span.enabled () then
              Obs.Span.annotate
                [
                  ("wal_records", Obs.Event.Int replayed);
                  ("torn_bytes", Obs.Event.Int torn);
                ];
            match Wal.open_append (wal_path dir) with
            | Error _ as e -> e
            | Ok wal ->
              Ok { dir; wal; spec; engine; torn_bytes = torn; wal_records = replayed })))))

(* --- the journal -------------------------------------------------------- *)

let spec t = t.spec
let engine t = t.engine
let dir t = t.dir
let wal_records t = t.wal_records
let torn_bytes t = t.torn_bytes

let log t entry =
  match Wal.append t.wal entry with
  | Ok () ->
    t.wal_records <- t.wal_records + 1;
    Ok ()
  | Error _ as e -> e

let checkpoint t spec =
  Obs.Span.with_span "store.checkpoint" @@ fun () ->
  match Snapshot.save (snapshot_path t.dir) spec with
  | Error _ as e -> e
  | Ok () -> (
    match Wal.truncate t.wal with
    | Ok () ->
      t.wal_records <- 0;
      Ok ()
    | Error _ as e -> e)

let close t = Wal.close t.wal
