module IF = Instance_format

type t = {
  dir : string;
  wal : Wal.t;
  spec : IF.spec;
  engine : Core.Delta.t;
  torn_bytes : int;
  stale_records : int;
  mutable generation : int;
  mutable wal_records : int;
  mutable replay_depth : int;
      (* how many batches a freshly replayed engine could undo — the
         journal's undo horizon. Tracks the snapshot+log pair, not the
         live engine: an [Undo] that would dip below zero cannot
         re-apply on recovery and is rejected at append time. *)
}

let snapshot_path dir = Filename.concat dir "store.snap"
let wal_path dir = Filename.concat dir "wal.log"

(* Store health gauges; one store per server process, refreshed on
   open/log/checkpoint so a scrape sees the current journal state. *)
let m_generation =
  Obs.Registry.gauge ~help:"Snapshot generation of the open store"
    "prefdb_store_generation"

let m_undo_horizon =
  Obs.Registry.gauge ~help:"Journaled batches the store could undo"
    "prefdb_store_undo_horizon"

let m_wal_records =
  Obs.Registry.gauge ~help:"Journal records since the last checkpoint"
    "prefdb_store_wal_records"

let m_replayed =
  Obs.Registry.counter ~help:"WAL records replayed on store open"
    "prefdb_store_replayed_records_total"

let m_stale =
  Obs.Registry.counter ~help:"Stale pre-checkpoint WAL records skipped on open"
    "prefdb_store_stale_records_total"

let m_torn =
  Obs.Registry.counter ~help:"Torn WAL bytes dropped on store open"
    "prefdb_store_torn_bytes_total"

let m_checkpoints =
  Obs.Registry.counter ~help:"Checkpoints taken" "prefdb_store_checkpoints_total"

let refresh_gauges t =
  Obs.Metric.set_gauge m_generation (Float.of_int t.generation);
  Obs.Metric.set_gauge m_undo_horizon (Float.of_int t.replay_depth);
  Obs.Metric.set_gauge m_wal_records (Float.of_int t.wal_records)

let build_engine spec =
  match IF.to_rule spec with
  | Error e -> Error e
  | Ok rule -> Core.Delta.create ~rule spec.IF.fds spec.IF.relation

let unix_error = function
  | Unix.Unix_error (err, fn, arg) ->
    Error (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message err))
  | e -> raise e

(* --- init --------------------------------------------------------------- *)

let init dir spec =
  match build_engine spec with
  | Error e -> Error ("invalid instance: " ^ e)
  | Ok _ -> (
    match
      (try Unix.mkdir dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      Sys.file_exists (snapshot_path dir)
    with
    | true -> Error (Printf.sprintf "%s: store already initialized" dir)
    | exception e -> unix_error e
    | false -> (
      match Snapshot.save (snapshot_path dir) ~generation:0 spec with
      | Error _ as e -> e
      | Ok () -> (
        match Wal.open_append (wal_path dir) with
        | Error _ as e -> e
        | Ok wal ->
          let r = Wal.truncate wal in
          Wal.close wal;
          r)))

(* --- open + replay ------------------------------------------------------ *)

let drop_torn_tail path clean_len =
  match Unix.openfile path [ Unix.O_WRONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Unix.ftruncate fd clean_len;
        Unix.fsync fd);
    Ok ()
  | exception e -> unix_error e

(* Records from a generation before the snapshot's are the leftovers of
   a checkpoint whose truncation never reached the disk: their effects
   are already folded into the snapshot, so replaying them would apply
   each a second time. They can only form a prefix — every append after
   a checkpoint carries the new generation — and a record from a future
   generation is impossible on any crash schedule, so both out-of-order
   shapes are reported as corruption rather than skipped. *)
let split_generations snap_gen entries =
  let rec skip_stale n = function
    | (g, _) :: rest when g < snap_gen -> skip_stale (n + 1) rest
    | rest -> (n, rest)
  in
  let stale, current = skip_stale 0 entries in
  match
    List.find_opt (fun (g, _) -> g <> snap_gen) current
  with
  | Some (g, _) when g > snap_gen ->
    Error
      (Printf.sprintf
         "wal record from future generation %d (snapshot is generation %d)" g
         snap_gen)
  | Some (g, _) ->
    Error
      (Printf.sprintf
         "stale wal record (generation %d) after a generation-%d record" g
         snap_gen)
  | None -> Ok (stale, List.map snd current)

(* Replay brings the engine through the same entry points the original
   process used, so everything observable — fact ids, slot counter,
   history depth, decomposition caches — re-converges bit-identically. *)
let replay_entry (spec, engine) = function
  | Wal.Batch ops -> (
    match Core.Delta.apply engine ops with
    | Ok _ -> Ok (spec, engine)
    | Error e -> Error ("batch does not re-apply: " ^ e))
  | Wal.Undo -> (
    match Core.Delta.undo engine with
    | Ok _ -> Ok (spec, engine)
    | Error e -> Error ("undo does not re-apply: " ^ e))
  | Wal.Prefer p -> (
    let spec' =
      {
        spec with
        IF.prefs = spec.IF.prefs @ [ p ];
        IF.relation = Core.Delta.relation engine;
      }
    in
    match build_engine spec' with
    | Ok engine' -> Ok (spec', engine')
    | Error e -> Error ("preference does not re-apply: " ^ e))

let open_ dir =
  Obs.Span.with_span "store.open" @@ fun () ->
  match Snapshot.load (snapshot_path dir) with
  | Error _ as e -> e
  | Ok (spec0, generation) -> (
    match build_engine spec0 with
    | Error e -> Error ("snapshot does not build: " ^ e)
    | Ok engine0 -> (
      match Wal.replay (wal_path dir) with
      | Error _ as e -> e
      | Ok (entries, clean_len, torn) -> (
        let truncated =
          if torn > 0 then drop_torn_tail (wal_path dir) clean_len else Ok ()
        in
        match truncated with
        | Error _ as e -> e
        | Ok () -> (
          match split_generations generation entries with
          | Error _ as e -> e
          | Ok (stale, entries) -> (
            let rec replay acc n = function
              | [] -> Ok (acc, n)
              | entry :: rest -> (
                match replay_entry acc entry with
                | Ok acc -> replay acc (n + 1) rest
                | Error e ->
                  Error (Printf.sprintf "wal record %d: %s" (n + 1) e))
            in
            match replay (spec0, engine0) 0 entries with
            | Error _ as e -> e
            | Ok ((spec, engine), replayed) -> (
              let spec =
                { spec with IF.relation = Core.Delta.relation engine }
              in
              if Obs.Span.enabled () then
                Obs.Span.annotate
                  [
                    ("wal_records", Obs.Event.Int replayed);
                    ("stale_records", Obs.Event.Int stale);
                    ("torn_bytes", Obs.Event.Int torn);
                    ("generation", Obs.Event.Int generation);
                  ];
              match Wal.open_append (wal_path dir) with
              | Error _ as e -> e
              | Ok wal ->
                let t =
                  {
                    dir;
                    wal;
                    spec;
                    engine;
                    torn_bytes = torn;
                    stale_records = stale;
                    generation;
                    wal_records = replayed;
                    replay_depth = Core.Delta.history_depth engine;
                  }
                in
                Obs.Metric.incr ~by:replayed m_replayed;
                Obs.Metric.incr ~by:stale m_stale;
                Obs.Metric.incr ~by:torn m_torn;
                refresh_gauges t;
                Ok t))))))

(* --- the journal -------------------------------------------------------- *)

let spec t = t.spec
let engine t = t.engine
let dir t = t.dir
let generation t = t.generation
let wal_records t = t.wal_records
let torn_bytes t = t.torn_bytes
let stale_records t = t.stale_records

let log t entry =
  match entry with
  | Wal.Undo when t.replay_depth = 0 ->
    Error
      "undo would revert past the last snapshot (the snapshot is the undo \
       horizon)"
  | _ -> (
    match Wal.append t.wal ~gen:t.generation entry with
    | Ok () ->
      t.wal_records <- t.wal_records + 1;
      (match entry with
      | Wal.Batch _ -> t.replay_depth <- t.replay_depth + 1
      | Wal.Undo -> t.replay_depth <- t.replay_depth - 1
      (* a preference rebuilds the engine from scratch on replay, with
         fresh (empty) history *)
      | Wal.Prefer _ -> t.replay_depth <- 0);
      refresh_gauges t;
      Ok ()
    | Error _ as e -> e)

let checkpoint t spec =
  Obs.Span.with_span "store.checkpoint" @@ fun () ->
  let generation = t.generation + 1 in
  match Snapshot.save (snapshot_path t.dir) ~generation spec with
  | Error _ as e -> e
  | Ok () -> (
    (* the new snapshot is durable: from here on, records journal
       against the new generation and replay skips everything older —
       even if the truncation below never happens (crash, I/O error),
       the snapshot + log pair stays consistent *)
    t.generation <- generation;
    t.wal_records <- 0;
    t.replay_depth <- 0;
    Obs.Metric.incr m_checkpoints;
    refresh_gauges t;
    match Wal.truncate t.wal with
    | Ok () -> Ok ()
    | Error _ as e -> e)

let close t = Wal.close t.wal
