(** Byte-level primitives of the binary store.

    Little-endian fixed-width integers, length-prefixed strings and a
    table-driven CRC-32 — the alphabet shared by {!Snapshot} (one
    checksummed body) and {!Wal} (one checksum per record). Writers
    append to a [Buffer.t]; readers are a cursor over an immutable
    string that turns any malformed input — truncation, out-of-range
    lengths — into a decode [Error] rather than an exception escaping
    to the caller. *)

(** {2 Writing} *)

val w_u8 : Buffer.t -> int -> unit
(** Raises [Invalid_argument] outside [0, 255]. *)

val w_u32 : Buffer.t -> int -> unit
(** Raises [Invalid_argument] outside [0, 2^32). *)

val w_i64 : Buffer.t -> int -> unit
(** Any OCaml int (63-bit payloads fit in the 64-bit slot). *)

val w_str : Buffer.t -> string -> unit
(** [u32] byte length followed by the raw bytes. *)

val w_varint : Buffer.t -> int -> unit
(** Zigzag + LEB128: the sign folds into bit 0 (0, -1, 1, -2, ... map
    to 0, 1, 2, 3, ...), then seven payload bits per byte, low bits
    first, high bit = continuation. Small-magnitude values of either
    sign take one or two bytes; any OCaml int fits in nine. *)

(** {2 Checksums} *)

val crc32 : string -> pos:int -> len:int -> int
(** CRC-32 (IEEE 802.3 polynomial, the zlib one) of a substring, as a
    non-negative int below 2^32. Raises [Invalid_argument] on an
    out-of-bounds range. *)

(** {2 Reading} *)

type reader
(** A cursor over a string slice. *)

val reader : ?pos:int -> ?len:int -> string -> reader
(** Defaults to the whole string. *)

val pos : reader -> int
(** Absolute offset of the cursor in the underlying string. *)

val remaining : reader -> int

val r_u8 : reader -> (int, string) result
val r_u32 : reader -> (int, string) result
val r_i64 : reader -> (int, string) result

val r_str : reader -> (string, string) result
(** Errors when the length prefix overruns the slice — the signature of
    a torn or corrupt record. *)

val decode : reader -> (reader -> 'a) -> ('a, string) result
(** [decode r f] runs a decoder built from the [exn_] readers below,
    catching {!Corrupt} into an [Error]. *)

(** {2 Exception-style reading}

    For composite decoders, threading [result] through every field is
    noise; these raise the private {!Corrupt} exception instead, which
    {!decode} catches at the boundary. *)

exception Corrupt of string

val fail : string -> 'a
(** [raise (Corrupt msg)] — for decoder-level validation errors. *)

val r_u8_exn : reader -> int
val r_u32_exn : reader -> int
val r_i64_exn : reader -> int
val r_str_exn : reader -> string

val r_varint_exn : reader -> int
(** Reads a zigzag-LEB128 varint (see {!w_varint}); raises {!Corrupt}
    on truncation or a tenth byte. *)

(** {2 Bulk-section reading}

    Position-addressed reads that elide the per-byte bounds check: the
    caller proves room first (compare {!remaining} against the
    section's declared byte size), walks the section with a position
    it owns over {!src}, then {!advance}s past it in one step. Used by
    the snapshot fact section, which would otherwise pay a bounds
    check and a cursor update per field across millions of slots.
    [get_varint] additionally assumes nine readable bytes at [!pos] —
    near the section end use [get_varint_checked], which checks every
    byte against [limit]. Both reject overlong (> 9 byte) varints with
    {!Corrupt}. *)

val src : reader -> string
(** The underlying buffer; index it from {!pos} up to
    [pos + remaining] only. *)

val advance : reader -> int -> unit
(** Skip [n] bytes the caller has consumed by position; raises
    {!Corrupt} if fewer remain. *)

val get_u8 : string -> int -> int

val get_varint : string -> int ref -> int
(** Decode the varint at [!pos], advancing the ref past it. *)

val get_varint_checked : string -> int ref -> limit:int -> int
(** As {!get_varint}, but refuses to read a byte at or beyond
    [limit]. *)
