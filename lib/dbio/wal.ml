module B = Binio

type entry =
  | Batch of Core.Delta.op list
  | Undo
  | Prefer of Instance_format.pref

let record_magic = "WALR"

(* --- record codec ------------------------------------------------------- *)

(* The payload opens with the generation of the snapshot the record
   was journaled against (varint — generations are small): replay uses
   it to skip records an earlier checkpoint already folded into the
   snapshot, the window a crash between [Snapshot.save]'s rename and
   {!truncate} leaves behind. *)
let encode_payload ~gen entry =
  if gen < 0 then invalid_arg "Wal.append: negative generation";
  let buf = Buffer.create 64 in
  B.w_varint buf gen;
  (match entry with
  | Batch ops ->
    B.w_u8 buf 0;
    Codec.w_list Codec.w_op buf ops
  | Undo -> B.w_u8 buf 1
  | Prefer p ->
    B.w_u8 buf 2;
    Codec.w_pref buf p);
  Buffer.contents buf

let decode_payload rd =
  let gen = B.r_varint_exn rd in
  if gen < 0 then B.fail (Printf.sprintf "negative wal generation %d" gen);
  let entry =
    match B.r_u8_exn rd with
    | 0 -> Batch (Codec.r_list Codec.r_op rd)
    | 1 -> Undo
    | 2 -> Prefer (Codec.r_pref rd)
    | k -> B.fail (Printf.sprintf "unknown wal record kind %d" k)
  in
  (gen, entry)

let decode_entry payload =
  let rd = B.reader payload in
  B.decode rd (fun rd ->
      let e = decode_payload rd in
      if B.remaining rd <> 0 then
        B.fail
          (Printf.sprintf "%d trailing byte(s) in wal record" (B.remaining rd));
      e)

let encode_record ~gen entry =
  let payload = encode_payload ~gen entry in
  let buf = Buffer.create (String.length payload + 12) in
  Buffer.add_string buf record_magic;
  B.w_u32 buf (String.length payload);
  Buffer.add_string buf payload;
  B.w_u32 buf (B.crc32 payload ~pos:0 ~len:(String.length payload));
  Buffer.contents buf

(* --- appending ---------------------------------------------------------- *)

type t = { path : string; fd : Unix.file_descr; mutable bytes : int }

let m_append_seconds =
  Obs.Registry.histogram ~help:"WAL record append+fsync latency"
    "prefdb_wal_append_seconds"

let m_appends =
  Obs.Registry.counter ~help:"WAL records appended" "prefdb_wal_appends_total"

let m_bytes =
  Obs.Registry.counter ~help:"Bytes appended to the WAL"
    "prefdb_wal_bytes_total"

let m_size =
  Obs.Registry.gauge ~help:"Current WAL size in bytes"
    "prefdb_wal_size_bytes"

let unix_error path = function
  | Unix.Unix_error (err, fn, _) ->
    Error (Printf.sprintf "%s: %s: %s" path fn (Unix.error_message err))
  | e -> raise e

let open_append path =
  match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 with
  | fd -> Ok { path; fd; bytes = (Unix.fstat fd).Unix.st_size }
  | exception e -> unix_error path e

let size t = t.bytes

let append t ~gen entry =
  Obs.Span.with_span "store.wal.append" @@ fun () ->
  let record = encode_record ~gen entry in
  let t0 = Unix.gettimeofday () in
  match
    let n = String.length record in
    let written = ref 0 in
    while !written < n do
      written :=
        !written + Unix.single_write_substring t.fd record !written (n - !written)
    done;
    Unix.fsync t.fd
  with
  | () ->
    t.bytes <- t.bytes + String.length record;
    Obs.Metric.observe m_append_seconds (Unix.gettimeofday () -. t0);
    Obs.Metric.incr m_appends;
    Obs.Metric.incr ~by:(String.length record) m_bytes;
    Obs.Metric.set_gauge m_size (Float.of_int t.bytes);
    if Obs.Span.enabled () then
      Obs.Span.annotate [ ("bytes", Obs.Event.Int (String.length record)) ];
    Ok ()
  | exception e -> unix_error t.path e

let truncate t =
  match
    Unix.ftruncate t.fd 0;
    Unix.fsync t.fd
  with
  | () ->
    t.bytes <- 0;
    Obs.Metric.set_gauge m_size 0.0;
    Ok ()
  | exception e -> unix_error t.path e

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* --- replay ------------------------------------------------------------- *)

(* Scan records off the front; any malformed record — bad magic, a
   length overrunning the file, a CRC mismatch, an undecodable payload
   — ends the valid prefix (the signature of a crash mid-append). *)
let scan data =
  let len = String.length data in
  let rec loop pos acc =
    if pos = len then (List.rev acc, pos)
    else if
      len - pos < 12
      || String.sub data pos 4 <> record_magic
    then (List.rev acc, pos)
    else
      let rd = B.reader ~pos:(pos + 4) data in
      match B.decode rd B.r_u32_exn with
      | Error _ -> (List.rev acc, pos)
      | Ok payload_len ->
        if len - pos - 12 < payload_len then (List.rev acc, pos)
        else
          let payload = String.sub data (pos + 8) payload_len in
          let crc_rd = B.reader ~pos:(pos + 8 + payload_len) data in
          let stored = B.decode crc_rd B.r_u32_exn in
          if stored <> Ok (B.crc32 payload ~pos:0 ~len:payload_len) then
            (List.rev acc, pos)
          else (
            match decode_entry payload with
            | Error _ -> (List.rev acc, pos)
            | Ok entry -> loop (pos + 12 + payload_len) (entry :: acc))
  in
  loop 0 []

let replay path =
  Obs.Span.with_span "store.wal.replay" @@ fun () ->
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> Ok ([], 0, 0)
  | data ->
    let entries, clean_len = scan data in
    if Obs.Span.enabled () then
      Obs.Span.annotate
        [
          ("records", Obs.Event.Int (List.length entries));
          ("torn_bytes", Obs.Event.Int (String.length data - clean_len));
        ];
    Ok (entries, clean_len, String.length data - clean_len)
