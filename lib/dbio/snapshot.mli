(** Binary instance snapshots.

    A compact, versioned, checksummed image of an
    {!Instance_format.spec} that reloads in O(file size): the fact
    section is a dense array in fact-id order — tombstoned slots
    included — so a reload reproduces every fact id and the slot
    counter exactly, and name constants are stored once in a file-local
    dictionary whose ids the loader remaps to process intern ids with a
    single probe per {e distinct} string (no per-occurrence hashing,
    no text parsing).

    Layout: a 24-byte header — 8-byte magic {!magic}, [u32] version
    {!version}, [i64] body length, [u32] body CRC-32 — followed by the
    body: schema, string dictionary, facts ([u32] slot count, then per
    slot a [u8] live flag and one column-typed field per attribute:
    [u32] dictionary id for a name column, [i64] for an int column),
    provenance (self-contained tuples), FDs and preferences (see
    {!Codec}). Everything after the header is covered by the CRC, so a
    torn or bit-flipped file is rejected as corrupt rather than loaded
    askew.

    {!save} is atomic: the image is written to a temp file, fsynced,
    renamed over the target, and the directory fsynced — a crash
    mid-save leaves the previous snapshot intact. *)

val magic : string
(** ["PREFDBS1"]. *)

val version : int

val encode : Instance_format.spec -> string
(** The full file image (header + body). *)

val decode : string -> (Instance_format.spec, string) result
(** Rejects bad magic, unknown versions, length mismatches, CRC
    failures and malformed bodies, each with a distinct message. *)

val save : string -> Instance_format.spec -> (unit, string) result
val load : string -> (Instance_format.spec, string) result
