(** Binary instance snapshots.

    A compact, versioned, checksummed image of an
    {!Instance_format.spec} that reloads in O(file size): the fact
    section is a dense array in fact-id order — tombstoned slots
    included — so a reload reproduces every fact id and the slot
    counter exactly, and name constants are stored once in a file-local
    dictionary whose ids the loader remaps to process intern ids with a
    single probe per {e distinct} string (no per-occurrence hashing,
    no text parsing).

    Layout: a 32-byte header — 8-byte magic {!magic}, [u32] version
    {!version}, [i64] generation, [i64] body length, [u32] body CRC-32 —
    followed by the body: schema, string dictionary, facts ([u32] slot
    count, then per slot a [u8] live flag and one column-typed field per
    attribute: [u32] dictionary id for a name column, [i64] for an int
    column), provenance (self-contained tuples), FDs and preferences
    (see {!Codec}). Everything after the header is covered by the CRC,
    so a torn or bit-flipped file is rejected as corrupt rather than
    loaded askew.

    The {e generation} is the store's checkpoint counter: every WAL
    record carries the generation of the snapshot it was journaled
    against, so replay can skip records an earlier checkpoint already
    folded in (the crash-between-save-and-truncate window) instead of
    double-applying them — see {!Store}.

    {!save} is atomic: the image is written to a temp file, fsynced,
    renamed over the target, and the directory fsynced — a crash
    mid-save leaves the previous snapshot intact. *)

val magic : string
(** ["PREFDBS1"]. *)

val version : int

val encode : generation:int -> Instance_format.spec -> string
(** The full file image (header + body). Raises [Invalid_argument] on
    a negative generation. *)

val decode : string -> (Instance_format.spec * int, string) result
(** The spec and the generation it was checkpointed at. Rejects bad
    magic, unknown versions, length mismatches, CRC failures and
    malformed bodies — including section counts larger than the bytes
    that could back them — each with a distinct message. *)

val save :
  string -> generation:int -> Instance_format.spec -> (unit, string) result

val load : string -> (Instance_format.spec * int, string) result
