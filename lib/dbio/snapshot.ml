open Relational
module B = Binio
module IF = Instance_format

let magic = "PREFDBS1"

(* version 3 appends the denial-constraint list after the preferences;
   a version-2 image (written before denials existed) decodes with
   [denials = []], so old stores open unchanged *)
let version = 3

let min_version = 2
let header_len = String.length magic + 4 + 8 + 8 + 4

(* --- encoding ----------------------------------------------------------- *)

(* The fact section is column-typed: a name column stores a file-local
   dictionary id, an int column stores the number itself, both as
   zigzag varints (small ids and small values — the overwhelmingly
   common case — cost one or two bytes instead of a fixed word). The
   dictionary is built in first-occurrence order over the slots, so
   encoding is one sweep and ids are dense. *)
let encode ~generation spec =
  if generation < 0 then invalid_arg "Snapshot.encode: negative generation";
  let schema = Relation.schema spec.IF.relation in
  let tys = Array.of_list (List.map (fun a -> a.Schema.attr_ty) (Schema.attributes schema)) in
  let arity = Array.length tys in
  let slots = Relation.slots spec.IF.relation in
  let body = Buffer.create (4096 + (Array.length slots * arity * 8)) in
  Codec.w_schema body schema;
  (* dictionary: collect distinct names in first-occurrence order *)
  let dict_ids = Hashtbl.create 1024 in
  let dict = Buffer.create 4096 in
  let dict_count = ref 0 in
  let dict_id_of packed =
    match Hashtbl.find_opt dict_ids packed with
    | Some id -> id
    | None ->
      let id = !dict_count in
      incr dict_count;
      Hashtbl.add dict_ids packed id;
      B.w_str dict (Intern.string_of_id (packed lsr 1));
      id
  in
  let facts = Buffer.create (Array.length slots * (arity + 2)) in
  Array.iter
    (fun (t, live) ->
      B.w_u8 facts (if live then 1 else 0);
      for col = 0 to arity - 1 do
        let packed = Tuple.packed_get t col in
        match tys.(col) with
        | Schema.TName -> B.w_varint facts (dict_id_of packed)
        | Schema.TInt -> B.w_varint facts (packed asr 1)
      done)
    slots;
  B.w_u32 body !dict_count;
  Buffer.add_buffer body dict;
  B.w_u32 body (Array.length slots);
  (* the slots are variable-width, so the section carries its own byte
     length: the decoder bulk-checks it once and walks by position *)
  B.w_u32 body (Buffer.length facts);
  Buffer.add_buffer body facts;
  Codec.w_list
    (fun buf (t, info) ->
      Codec.w_tuple buf t;
      Codec.w_info buf info)
    body
    (Provenance.bindings spec.IF.provenance);
  Codec.w_list Codec.w_fd body spec.IF.fds;
  Codec.w_list Codec.w_pref body spec.IF.prefs;
  Codec.w_list Codec.w_denial body spec.IF.denials;
  let body = Buffer.contents body in
  let out = Buffer.create (header_len + String.length body) in
  Buffer.add_string out magic;
  B.w_u32 out version;
  B.w_i64 out generation;
  B.w_i64 out (String.length body);
  B.w_u32 out (B.crc32 body ~pos:0 ~len:(String.length body));
  Buffer.add_string out body;
  Buffer.contents out

(* --- decoding ----------------------------------------------------------- *)

let decode_body ~v rd =
  let schema = Codec.r_schema rd in
  let tys =
    Array.of_list (List.map (fun a -> a.Schema.attr_ty) (Schema.attributes schema))
  in
  let arity = Array.length tys in
  (* remap the file-local dictionary to process intern ids: one [pack]
     per distinct string, after which every occurrence is a plain array
     probe *)
  let dict_count = B.r_u32_exn rd in
  (* bound file-declared counts by the bytes that could actually back
     them before allocating: a crafted (even CRC-valid) image must fail
     as corrupt, not force a multi-GB [Array] allocation *)
  if dict_count > B.remaining rd then
    B.fail
      (Printf.sprintf
         "dictionary count %d exceeds the %d byte(s) left in the body"
         dict_count (B.remaining rd));
  let packed_names =
    Array.init dict_count (fun _ -> Value.pack (Value.Name (B.r_str_exn rd)))
  in
  let slot_count = B.r_u32_exn rd in
  let sect_len = B.r_u32_exn rd in
  (* the slots are variable-width varints, but the section declares
     its byte length: one bulk check covers all of it, and while a
     worst-case slot still fits before [stop] the per-byte checks are
     elided too — only the last few slots fall back to checked reads *)
  if B.remaining rd < sect_len then
    B.fail
      (Printf.sprintf "truncated fact section: %d byte(s) declared, %d left"
         sect_len (B.remaining rd));
  (* each slot costs at least a live flag plus one varint byte per
     column; a count the declared section cannot hold is corruption *)
  if slot_count > sect_len / (1 + arity) then
    B.fail
      (Printf.sprintf
         "slot count %d exceeds what a %d-byte fact section can hold"
         slot_count sect_len);
  let s = B.src rd in
  let base = B.pos rd in
  let stop = base + sect_len in
  let pos = ref base in
  let worst_slot = 1 + (9 * arity) in
  let ws = Graphs.Vset.word_size in
  let words =
    Array.make (if slot_count = 0 then 0 else ((slot_count - 1) / ws) + 1) 0
  in
  (* one scratch row serves every slot: [Tuple.of_packed] blits it
     into the tuple's own flat block *)
  let scratch = Array.make arity 0 in
  (* the live-bit cursor advances incrementally: [i / word_size] per
     slot is a genuine divide instruction (the word size is not a power
     of two), visible at a million slots *)
  let word_i = ref 0 in
  let bit_i = ref 0 in
  let read_flag i =
    if !pos >= stop then
      B.fail (Printf.sprintf "fact section ends inside slot %d" i);
    (match B.get_u8 s !pos with
    | 0 -> ()
    | 1 ->
      Array.unsafe_set words !word_i
        (Array.unsafe_get words !word_i lor (1 lsl !bit_i))
    | f -> B.fail (Printf.sprintf "unknown live flag %d" f));
    incr pos;
    incr bit_i;
    if !bit_i = ws then begin
      bit_i := 0;
      incr word_i
    end
  in
  let read_slot_generic i =
    let checked = stop - !pos < worst_slot in
    read_flag i;
    for col = 0 to arity - 1 do
      let v =
        if checked then B.get_varint_checked s pos ~limit:stop
        else B.get_varint s pos
      in
      Array.unsafe_set scratch col
        (match Array.unsafe_get tys col with
        | Schema.TName ->
          if v < 0 || v >= dict_count then
            B.fail
              (Printf.sprintf "dictionary id %d out of range (%d entries)" v
                 dict_count);
          Array.unsafe_get packed_names v
        | Schema.TInt -> Value.pack_int v)
    done;
    Tuple.of_packed scratch
  in
  (* an all-int schema (bulk numeric data, and the headline bench
     shape) needs no type dispatch and no dictionary probe per column *)
  let read_slot_int i =
    let checked = stop - !pos < worst_slot in
    read_flag i;
    for col = 0 to arity - 1 do
      let v =
        if checked then B.get_varint_checked s pos ~limit:stop
        else B.get_varint s pos
      in
      Array.unsafe_set scratch col (Value.pack_int v)
    done;
    Tuple.of_packed scratch
  in
  let read_slot =
    if Array.for_all (fun ty -> ty = Schema.TInt) tys then read_slot_int
    else read_slot_generic
  in
  let facts =
    if slot_count = 0 then [||]
    else begin
      (* explicit order: the cursor IS the iteration state *)
      let facts = Array.make slot_count (read_slot 0) in
      for i = 1 to slot_count - 1 do
        facts.(i) <- read_slot i
      done;
      facts
    end
  in
  if !pos <> stop then
    B.fail
      (Printf.sprintf "fact section length mismatch: %d byte(s) undecoded"
         (stop - !pos));
  B.advance rd sect_len;
  (* [~checked:false]: every tuple was just decoded against this very
     schema's column types, and live-uniqueness held when the image was
     encoded — the body CRC rules out any change since *)
  let relation =
    match
      Relation.of_facts ~checked:false schema facts (Graphs.Vset.of_words words)
    with
    | r -> r
    | exception Invalid_argument m -> B.fail m
  in
  let provenance =
    Provenance.of_list
      (Codec.r_list
         (fun rd ->
           let t = Codec.r_tuple rd in
           (t, Codec.r_info rd))
         rd)
  in
  let fds = Codec.r_list Codec.r_fd rd in
  let prefs = Codec.r_list Codec.r_pref rd in
  let denials = if v >= 3 then Codec.r_list Codec.r_denial rd else [] in
  if B.remaining rd <> 0 then
    B.fail (Printf.sprintf "%d trailing byte(s) after the body" (B.remaining rd));
  { IF.relation; fds; denials; provenance; prefs }

(* A million-slot decode allocates one small block per tuple, and the
   incremental major collector charges its marking slices to exactly
   this allocation — at the default pacing that is a third of the whole
   load. Run the collector at bulk pacing for the duration (bigger
   slices, deferred work) and restore on the way out; the deferred work
   is paid at normal pace by whoever allocates next. (Resizing the
   minor heap here instead is a loss: shrinking it back forces a full
   minor collection that promotes the entire decoded image in one
   stop-the-world step.) *)
let with_bulk_gc_pacing f =
  let g = Gc.get () in
  if g.Gc.space_overhead >= 400 then f ()
  else begin
    Gc.set { g with Gc.space_overhead = 400 };
    Fun.protect ~finally:(fun () -> Gc.set g) f
  end

let decode image =
  if String.length image < header_len then Error "snapshot too short for a header"
  else if String.sub image 0 (String.length magic) <> magic then
    Error "bad magic: not a prefdb snapshot"
  else
    let rd = B.reader ~pos:(String.length magic) image in
    match
      B.decode rd (fun rd ->
          let v = B.r_u32_exn rd in
          let generation = B.r_i64_exn rd in
          let body_len = B.r_i64_exn rd in
          let crc = B.r_u32_exn rd in
          (v, generation, body_len, crc))
    with
    | Error e -> Error ("bad snapshot header: " ^ e)
    | Ok (v, generation, body_len, crc) ->
      if v < min_version || v > version then
        Error (Printf.sprintf "unsupported snapshot version %d (expected %d)" v version)
      else if generation < 0 then
        Error (Printf.sprintf "negative snapshot generation %d" generation)
      else if String.length image - header_len <> body_len then
        Error
          (Printf.sprintf "body length mismatch: header says %d, file has %d"
             body_len
             (String.length image - header_len))
      else if B.crc32 image ~pos:header_len ~len:body_len <> crc then
        Error "body checksum mismatch (corrupt or torn snapshot)"
      else
        with_bulk_gc_pacing @@ fun () ->
        Result.map
          (fun spec -> (spec, generation))
          (B.decode (B.reader ~pos:header_len image) (decode_body ~v))

(* --- files -------------------------------------------------------------- *)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)
  | exception Unix.Unix_error _ -> ()

let m_save_seconds =
  Obs.Registry.histogram ~help:"Snapshot save (encode+write+rename) latency"
    "prefdb_snapshot_save_seconds"

let m_saves =
  Obs.Registry.counter ~help:"Snapshots saved" "prefdb_snapshot_saves_total"

let m_size =
  Obs.Registry.gauge ~help:"Size in bytes of the last snapshot written"
    "prefdb_snapshot_size_bytes"

let m_load_seconds =
  Obs.Registry.histogram ~help:"Snapshot load (read+decode) latency"
    "prefdb_snapshot_load_seconds"

let save path ~generation spec =
  Obs.Span.with_span "store.snapshot.save" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  match encode ~generation spec with
  | exception Invalid_argument m -> Error m
  | image -> (
    let tmp = path ^ ".tmp" in
    match
      let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let n = String.length image in
          let written = ref 0 in
          while !written < n do
            written :=
              !written + Unix.single_write_substring fd image !written (n - !written)
          done;
          Unix.fsync fd);
      Unix.rename tmp path;
      fsync_dir (Filename.dirname path)
    with
    | () ->
      Obs.Metric.observe m_save_seconds (Unix.gettimeofday () -. t0);
      Obs.Metric.incr m_saves;
      Obs.Metric.set_gauge m_size (Float.of_int (String.length image));
      if Obs.Span.enabled () then
        Obs.Span.annotate [ ("bytes", Obs.Event.Int (String.length image)) ];
      Ok ()
    | exception Unix.Unix_error (err, fn, arg) ->
      Error (Printf.sprintf "%s: %s(%s): %s" path fn arg (Unix.error_message err)))

(* read the whole file into one exactly-sized buffer: [input_all]
   grows-and-copies through tens of megabytes, and every intermediate
   lands on the major heap *)
let read_file path =
  let ic = In_channel.open_bin path in
  Fun.protect
    ~finally:(fun () -> In_channel.close ic)
    (fun () ->
      match In_channel.length ic with
      | exception Sys_error _ -> In_channel.input_all ic
      | n when n > Int64.of_int Sys.max_string_length ->
        raise (Sys_error (path ^ ": file too large to load"))
      | n -> (
        let n = Int64.to_int n in
        match In_channel.really_input_string ic n with
        | Some s ->
          (* trailing bytes appearing between [length] and here would
             silently vanish; read on to make the length check in
             [decode] see them *)
          (match In_channel.input_char ic with
          | None -> s
          | Some _ -> raise (Sys_error (path ^ ": file grew while loading")))
        | None -> raise (Sys_error (path ^ ": file shrank while loading"))))

let load path =
  Obs.Span.with_span "store.snapshot.load" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  match read_file path with
  | exception Sys_error m -> Error m
  | image -> (
    match decode image with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok (spec, generation) ->
      Obs.Metric.observe m_load_seconds (Unix.gettimeofday () -. t0);
      if Obs.Span.enabled () then
        Obs.Span.annotate
          [
            ("bytes", Obs.Event.Int (String.length image));
            ("slots", Obs.Event.Int (Relation.slot_count spec.IF.relation));
            ("generation", Obs.Event.Int generation);
          ];
      Ok (spec, generation))
