open Relational
module B = Binio

let w_list w buf l =
  B.w_u32 buf (List.length l);
  List.iter (w buf) l

let r_list r rd =
  let n = B.r_u32_exn rd in
  List.init n (fun _ -> r rd)

(* --- schema ------------------------------------------------------------- *)

let w_ty buf = function
  | Schema.TName -> B.w_u8 buf 0
  | Schema.TInt -> B.w_u8 buf 1

let r_ty rd =
  match B.r_u8_exn rd with
  | 0 -> Schema.TName
  | 1 -> Schema.TInt
  | t -> B.fail (Printf.sprintf "unknown attribute type tag %d" t)

let w_schema buf schema =
  B.w_str buf (Schema.name schema);
  w_list
    (fun buf a ->
      B.w_str buf a.Schema.attr_name;
      w_ty buf a.Schema.attr_ty)
    buf (Schema.attributes schema)

let r_schema rd =
  let name = B.r_str_exn rd in
  let attrs =
    r_list
      (fun rd ->
        let attr = B.r_str_exn rd in
        (attr, r_ty rd))
      rd
  in
  match Schema.make name attrs with
  | schema -> schema
  | exception Invalid_argument m -> B.fail ("bad schema: " ^ m)

(* --- values and tuples -------------------------------------------------- *)

let w_value buf = function
  | Value.Name s ->
    B.w_u8 buf 0;
    B.w_str buf s
  | Value.Int n ->
    B.w_u8 buf 1;
    B.w_i64 buf n

let r_value rd =
  match B.r_u8_exn rd with
  | 0 -> Value.Name (B.r_str_exn rd)
  | 1 -> Value.Int (B.r_i64_exn rd)
  | t -> B.fail (Printf.sprintf "unknown value tag %d" t)

let w_tuple buf t = w_list w_value buf (Tuple.values t)
let r_tuple rd = Tuple.make (r_list r_value rd)

(* --- provenance --------------------------------------------------------- *)

let w_info buf info =
  let flags =
    (if info.Provenance.source <> None then 1 else 0)
    lor if info.Provenance.timestamp <> None then 2 else 0
  in
  B.w_u8 buf flags;
  Option.iter (B.w_str buf) info.Provenance.source;
  Option.iter (B.w_i64 buf) info.Provenance.timestamp

let r_info rd =
  let flags = B.r_u8_exn rd in
  if flags land lnot 3 <> 0 then
    B.fail (Printf.sprintf "unknown provenance flags 0x%02x" flags);
  let source = if flags land 1 <> 0 then Some (B.r_str_exn rd) else None in
  let timestamp = if flags land 2 <> 0 then Some (B.r_i64_exn rd) else None in
  { Provenance.source; timestamp }

(* --- declarations ------------------------------------------------------- *)

let w_fd buf fd = B.w_str buf (Constraints.Fd.to_string fd)

let r_fd rd =
  let s = B.r_str_exn rd in
  match Constraints.Fd.of_string s with
  | Ok fd -> fd
  | Error m -> B.fail (Printf.sprintf "bad fd %S: %s" s m)

let w_denial buf dc = B.w_str buf (Constraints.Denial.to_string dc)

let r_denial rd =
  let s = B.r_str_exn rd in
  match Constraints.Denial.of_string s with
  | Ok dc -> dc
  | Error m -> B.fail (Printf.sprintf "bad denial %S: %s" s m)

let w_pref buf = function
  | Instance_format.Source_pair (hi, lo) ->
    B.w_u8 buf 0;
    B.w_str buf hi;
    B.w_str buf lo
  | Instance_format.Newest -> B.w_u8 buf 1
  | Instance_format.Oldest -> B.w_u8 buf 2
  | Instance_format.Attribute (a, dir) ->
    B.w_u8 buf 3;
    B.w_str buf a;
    B.w_u8 buf (match dir with `Larger -> 0 | `Smaller -> 1)
  | Instance_format.Formula f ->
    B.w_u8 buf 4;
    B.w_str buf (Core.Pref_formula.to_string f)

let r_pref rd =
  match B.r_u8_exn rd with
  | 0 ->
    let hi = B.r_str_exn rd in
    let lo = B.r_str_exn rd in
    Instance_format.Source_pair (hi, lo)
  | 1 -> Instance_format.Newest
  | 2 -> Instance_format.Oldest
  | 3 -> (
    let a = B.r_str_exn rd in
    match B.r_u8_exn rd with
    | 0 -> Instance_format.Attribute (a, `Larger)
    | 1 -> Instance_format.Attribute (a, `Smaller)
    | d -> B.fail (Printf.sprintf "unknown attribute direction tag %d" d))
  | 4 -> (
    let s = B.r_str_exn rd in
    match Core.Pref_formula.parse s with
    | Ok f -> Instance_format.Formula f
    | Error m -> B.fail (Printf.sprintf "bad preference formula %S: %s" s m))
  | t -> B.fail (Printf.sprintf "unknown preference tag %d" t)

let w_op buf = function
  | Core.Delta.Insert t ->
    B.w_u8 buf 0;
    w_tuple buf t
  | Core.Delta.Delete t ->
    B.w_u8 buf 1;
    w_tuple buf t

let r_op rd =
  match B.r_u8_exn rd with
  | 0 -> Core.Delta.Insert (r_tuple rd)
  | 1 -> Core.Delta.Delete (r_tuple rd)
  | t -> B.fail (Printf.sprintf "unknown delta op tag %d" t)
