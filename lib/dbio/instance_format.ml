open Relational

type pref =
  | Source_pair of string * string
  | Newest
  | Oldest
  | Attribute of string * [ `Larger | `Smaller ]
  | Formula of Core.Pref_formula.t

type spec = {
  relation : Relation.t;
  fds : Constraints.Fd.t list;
  denials : Constraints.Denial.t list;
  provenance : Provenance.t;
  prefs : pref list;
}

(* --- tokenizing one line ------------------------------------------------ *)

(* Split on whitespace, keeping quoted tokens ('...') together and
   tagging them so 'R&D' stays a name even if it looks numeric. Inside
   quotes, [\'] and [\\] escape a literal quote and backslash (the
   writer emits them, see {!escape_name}); any other escape is an
   error rather than a silent re-tokenization. *)
type token = Bare of string | Quoted of string

let tokenize_line line =
  let n = String.length line in
  let rec loop i acc =
    if i >= n then Ok (List.rev acc)
    else
      let c = line.[i] in
      if c = ' ' || c = '\t' then loop (i + 1) acc
      else if c = '#' then Ok (List.rev acc)
      else if c = '\'' then begin
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then Error "unterminated quote"
          else
            match line.[j] with
            | '\'' -> loop (j + 1) (Quoted (Buffer.contents buf) :: acc)
            | '\\' ->
              if j + 1 >= n then Error "unterminated quote (dangling escape)"
              else (
                match line.[j + 1] with
                | ('\'' | '\\') as e ->
                  Buffer.add_char buf e;
                  scan (j + 2)
                | e ->
                  Error
                    (Printf.sprintf
                       "unknown escape \\%c in quoted name (only \\' and \
                        \\\\ are recognized)"
                       e))
            | c ->
              Buffer.add_char buf c;
              scan (j + 1)
        in
        scan (i + 1)
      end
      else
        let rec scan j =
          if j < n && line.[j] <> ' ' && line.[j] <> '\t' then scan (j + 1)
          else j
        in
        let j = scan i in
        loop j (Bare (String.sub line i (j - i)) :: acc)
  in
  loop 0 []

let token_text = function Bare s | Quoted s -> s

(* --- declaration parsers ------------------------------------------------ *)

let parse_schema_decl body =
  (* body looks like: Mgr(Name:name, Dept:name, Salary:int) *)
  match String.index_opt body '(' with
  | None -> Error "expected '(' in relation declaration"
  | Some lp ->
    if body.[String.length body - 1] <> ')' then
      Error "expected ')' closing the relation declaration"
    else begin
      let rel_name = String.trim (String.sub body 0 lp) in
      let inner = String.sub body (lp + 1) (String.length body - lp - 2) in
      let parse_attr chunk =
        match String.split_on_char ':' (String.trim chunk) with
        | [ attr; ty ] -> (
          match String.trim (String.lowercase_ascii ty) with
          | "name" | "string" -> Ok (String.trim attr, Schema.TName)
          | "int" | "nat" -> Ok (String.trim attr, Schema.TInt)
          | other -> Error (Printf.sprintf "unknown attribute type %S" other))
        | _ -> Error (Printf.sprintf "cannot parse attribute %S" chunk)
      in
      let rec collect = function
        | [] -> Ok []
        | chunk :: rest -> (
          match parse_attr chunk with
          | Error _ as e -> e
          | Ok a -> (
            match collect rest with Error _ as e -> e | Ok l -> Ok (a :: l)))
      in
      match collect (String.split_on_char ',' inner) with
      | Error e -> Error e
      | Ok attrs -> (
        if rel_name = "" then Error "empty relation name"
        else
          try Ok (Schema.make rel_name attrs)
          with Invalid_argument m -> Error m)
    end

let parse_value ty tok =
  match (ty, tok) with
  | Schema.TName, (Quoted s | Bare s) -> Ok (Value.Name s)
  | Schema.TInt, Quoted s ->
    Error (Printf.sprintf "quoted value %S for an int attribute" s)
  | Schema.TInt, Bare s -> (
    match int_of_string_opt s with
    | Some n -> Ok (Value.Int n)
    | None -> Error (Printf.sprintf "expected an integer, got %S" s))

let parse_annotation info tok =
  match String.index_opt tok '=' with
  | None -> Error (Printf.sprintf "unexpected trailing token %S" tok)
  | Some i -> (
    let key = String.sub tok 0 i in
    let value = String.sub tok (i + 1) (String.length tok - i - 1) in
    match key with
    | "source" -> Ok { info with Provenance.source = Some value }
    | "timestamp" -> (
      match int_of_string_opt value with
      | Some ts -> Ok { info with Provenance.timestamp = Some ts }
      | None -> Error (Printf.sprintf "timestamp %S is not an integer" value))
    | _ -> Error (Printf.sprintf "unknown annotation %S" key))

let parse_tuple_decl schema tokens =
  let arity = Schema.arity schema in
  if List.length tokens < arity then
    Error
      (Printf.sprintf "tuple has %d values but the schema needs %d"
         (List.length tokens) arity)
  else begin
    let rec split i toks values =
      if i = arity then Ok (List.rev values, toks)
      else
        match toks with
        | [] ->
          (* unreachable under the arity guard above, but a truncated
             file (a crash mid-write) must report its position, not
             kill the process *)
          Error
            (Printf.sprintf
               "tuple truncated: found %d of %d values (torn write?)" i arity)
        | tok :: rest -> (
          match parse_value (Schema.ty_at schema i) tok with
          | Error e -> Error e
          | Ok v -> split (i + 1) rest (v :: values))
    in
    match split 0 tokens [] with
    | Error e -> Error e
    | Ok (values, trailing) -> (
      let rec annotations info = function
        | [] -> Ok info
        | tok :: rest -> (
          match parse_annotation info (token_text tok) with
          | Error _ as e -> e
          | Ok info -> annotations info rest)
      in
      match annotations Provenance.no_info trailing with
      | Error e -> Error e
      | Ok info -> Ok (Tuple.make values, info))
  end

let parse_prefer_decl body tokens =
  match List.map token_text tokens with
  | "formula" :: _ :: _ ->
    (* re-parse from the raw text to keep quoting and operators intact *)
    let text = String.trim (String.sub body 7 (String.length body - 7)) in
    (match Core.Pref_formula.parse text with
    | Ok f -> Ok (Formula f)
    | Error e -> Error e)
  | [ "newest" ] -> Ok Newest
  | [ "oldest" ] -> Ok Oldest
  | [ "source"; hi; ">"; lo ] -> Ok (Source_pair (hi, lo))
  | [ "attribute"; attr; "larger" ] -> Ok (Attribute (attr, `Larger))
  | [ "attribute"; attr; "smaller" ] -> Ok (Attribute (attr, `Smaller))
  | _ -> Error "cannot parse prefer declaration"

let parse_pref body =
  let body = String.trim body in
  match tokenize_line body with
  | Error e -> Error e
  | Ok tokens -> parse_prefer_decl body tokens

(* --- whole documents ---------------------------------------------------- *)

type state = {
  schema : Schema.t option;
  tuples : (Tuple.t * Provenance.info) list;
  fds_acc : Constraints.Fd.t list;
  denials_acc : (int * Constraints.Denial.t) list;
      (* with the declaration's line, for positioned wf errors *)
  prefs_acc : pref list;
}

(* Parsing is where name constants enter the process, so it is also where
   they are interned (packing the tuples fills the dictionary); the span
   reports how much the dictionary grew. *)
let parse text =
  Obs.Span.with_span "intern.parse"
    ~args:[ ("symbols_before", Obs.Event.Int (Intern.count ())) ]
  @@ fun () ->
  let lines = String.split_on_char '\n' text in
  let step (lineno, acc) line =
    let lineno = lineno + 1 in
    match acc with
    | Error _ -> (lineno, acc)
    | Ok st -> (
      let fail msg = (lineno, Error (Printf.sprintf "line %d: %s" lineno msg)) in
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then (lineno, acc)
      else
        match String.index_opt trimmed ' ' with
        | None -> fail (Printf.sprintf "cannot parse %S" trimmed)
        | Some sp -> (
          let keyword = String.sub trimmed 0 sp in
          let body = String.trim (String.sub trimmed sp (String.length trimmed - sp)) in
          match keyword with
          | "relation" -> (
            if st.schema <> None then fail "duplicate relation declaration"
            else
              match parse_schema_decl body with
              | Error e -> fail e
              | Ok schema -> (lineno, Ok { st with schema = Some schema }))
          | "fd" -> (
            match Constraints.Fd.of_string body with
            | Error e -> fail e
            | Ok fd -> (lineno, Ok { st with fds_acc = fd :: st.fds_acc }))
          | "denial" -> (
            match Constraints.Denial.of_string body with
            | Error e -> fail e
            | Ok dc ->
              (lineno, Ok { st with denials_acc = (lineno, dc) :: st.denials_acc }))
          | "tuple" -> (
            match st.schema with
            | None -> fail "tuple before relation declaration"
            | Some schema -> (
              match tokenize_line body with
              | Error e -> fail e
              | Ok tokens -> (
                match parse_tuple_decl schema tokens with
                | Error e -> fail e
                | Ok entry -> (lineno, Ok { st with tuples = entry :: st.tuples }))))
          | "prefer" -> (
            match tokenize_line body with
            | Error e -> fail e
            | Ok tokens -> (
              match parse_prefer_decl body tokens with
              | Error e -> fail e
              | Ok pref -> (lineno, Ok { st with prefs_acc = pref :: st.prefs_acc })))
          | other -> fail (Printf.sprintf "unknown declaration %S" other)))
  in
  let _, result =
    List.fold_left step
      ( 0,
        Ok
          { schema = None; tuples = []; fds_acc = []; denials_acc = [];
            prefs_acc = [] } )
      lines
  in
  match result with
  | Error _ as e -> e
  | Ok st -> (
    match st.schema with
    | None -> Error "no relation declaration"
    | Some schema -> (
      let fds = List.rev st.fds_acc in
      let denial_decls = List.rev st.denials_acc in
      let bad_denial =
        List.find_map
          (fun (lineno, dc) ->
            match Constraints.Denial.wf schema dc with
            | Ok () -> None
            | Error e -> Some (Printf.sprintf "line %d: %s" lineno e))
          denial_decls
      in
      match
        match bad_denial with
        | Some e -> Error e
        | None -> Constraints.Fd.wf_all schema fds
      with
      | Error e -> Error e
      | Ok () -> (
        try
          let tuples = List.rev st.tuples in
          let relation = Relation.of_tuples schema (List.map fst tuples) in
          if Obs.Span.enabled () then
            Obs.Span.annotate
              [
                ("symbols", Obs.Event.Int (Intern.count ()));
                ("tuples", Obs.Event.Int (Relation.cardinality relation));
              ];
          let provenance =
            Provenance.of_list
              (List.filter
                 (fun (_, i) -> i <> Provenance.no_info)
                 tuples)
          in
          Ok
            {
              relation;
              fds;
              denials = List.map snd denial_decls;
              provenance;
              prefs = List.rev st.prefs_acc;
            }
        with Invalid_argument m -> Error m)))

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error m -> Error m

let to_rule spec =
  let source_pairs =
    List.filter_map
      (function Source_pair (hi, lo) -> Some (hi, lo) | _ -> None)
      spec.prefs
  in
  let source_rule =
    if source_pairs = [] then Ok []
    else
      match
        Core.Pref_rules.source_reliability spec.provenance
          ~more_reliable_than:source_pairs
      with
      | Error e -> Error e
      | Ok r -> Ok [ r ]
  in
  let schema = Relation.schema spec.relation in
  let other_rules =
    List.fold_left
      (fun acc pref ->
        match (acc, pref) with
        | (Error _ as e), _ -> e
        | Ok rules, Source_pair _ -> Ok rules
        | Ok rules, Newest ->
          Ok (Core.Pref_rules.newest_first spec.provenance :: rules)
        | Ok rules, Oldest ->
          Ok (Core.Pref_rules.oldest_first spec.provenance :: rules)
        | Ok rules, Attribute (attr, prefer) -> (
          match Core.Pref_rules.on_attribute schema attr ~prefer with
          | Error e -> Error e
          | Ok r -> Ok (r :: rules))
        | Ok rules, Formula f -> (
          match Core.Pref_formula.to_rule schema f with
          | Error e -> Error e
          | Ok r -> Ok (r :: rules)))
      (Ok []) spec.prefs
  in
  match (source_rule, other_rules) with
  | Error e, _ | _, Error e -> Error e
  | Ok src, Ok others -> Ok (Core.Pref_rules.lexicographic (src @ List.rev others))

(* The writer's side of the quoting contract: ['] and [\] are escaped so
   the tokenizer reads back exactly the bytes of the name. Control
   characters (anything below 0x20, and DEL) cannot be represented on a
   one-declaration-per-line format at all — a newline inside a name
   would re-tokenize as two lines — so they are rejected up front
   instead of producing a file the parser cannot reload. *)
let unprintable s =
  let bad = ref None in
  String.iteri
    (fun i c ->
      if !bad = None && (Char.code c < 0x20 || c = '\x7f') then bad := Some i)
    s;
  !bad

let escape_name s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if c = '\'' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let check_name what s =
  match unprintable s with
  | None -> Ok ()
  | Some i ->
    Error
      (Printf.sprintf
         "%s %S contains unprintable byte 0x%02x at position %d and cannot \
          be written to the text format"
         what s (Char.code s.[i]) i)

(* Sources are written as the bare token of a [source=...] annotation:
   whitespace or [#] would split the token or start a comment. *)
let check_source s =
  if s = "" then Error "empty source annotation cannot be written"
  else
    match unprintable s with
    | Some i ->
      Error
        (Printf.sprintf
           "source %S contains unprintable byte 0x%02x at position %d" s
           (Char.code s.[i]) i)
    | None ->
      if String.exists (fun c -> c = ' ' || c = '#') s then
        Error
          (Printf.sprintf
             "source %S contains whitespace or '#' and cannot be written as \
              a source= annotation"
             s)
      else Ok ()

let render spec =
  let buf = Buffer.create 1024 in
  let error = ref None in
  let fail e = if !error = None then error := Some e in
  let checked check s = match check s with Ok () -> () | Error e -> fail e in
  let schema = Relation.schema spec.relation in
  let ty_name = function Schema.TName -> "name" | Schema.TInt -> "int" in
  Buffer.add_string buf
    (Printf.sprintf "relation %s(%s)\n" (Schema.name schema)
       (String.concat ", "
          (List.map
             (fun a ->
               Printf.sprintf "%s:%s" a.Schema.attr_name (ty_name a.Schema.attr_ty))
             (Schema.attributes schema))));
  List.iter
    (fun fd ->
      Buffer.add_string buf
        (Printf.sprintf "fd %s\n" (Constraints.Fd.to_string fd)))
    spec.fds;
  List.iter
    (fun dc ->
      (* quoted parts of the denial line re-tokenize through the same
         escape rules as names; a control byte would tear the line *)
      checked (check_name "denial label") (Constraints.Denial.label dc);
      List.iter
        (fun { Constraints.Denial.left; right; _ } ->
          List.iter
            (function
              | Constraints.Denial.Const (Value.Name s) ->
                checked (check_name "name") s
              | _ -> ())
            [ left; right ])
        (Constraints.Denial.body dc);
      Buffer.add_string buf
        (Printf.sprintf "denial %s\n" (Constraints.Denial.to_string dc)))
    spec.denials;
  Relation.iter
    (fun t ->
      let values =
        List.map
          (function
            | Value.Name s ->
              checked (check_name "name") s;
              Printf.sprintf "'%s'" (escape_name s)
            | Value.Int n -> string_of_int n)
          (Tuple.values t)
      in
      let info = Provenance.get spec.provenance t in
      let annots =
        (match info.Provenance.source with
        | Some s ->
          checked check_source s;
          [ Printf.sprintf "source=%s" s ]
        | None -> [])
        @
        match info.Provenance.timestamp with
        | Some ts -> [ Printf.sprintf "timestamp=%d" ts ]
        | None -> []
      in
      Buffer.add_string buf
        (Printf.sprintf "tuple %s%s\n" (String.concat " " values)
           (match annots with [] -> "" | l -> "  " ^ String.concat " " l)))
    spec.relation;
  List.iter
    (fun pref ->
      Buffer.add_string buf
        (match pref with
        | Source_pair (hi, lo) ->
          checked check_source hi;
          checked check_source lo;
          Printf.sprintf "prefer source %s > %s\n" hi lo
        | Newest -> "prefer newest\n"
        | Oldest -> "prefer oldest\n"
        | Attribute (a, `Larger) -> Printf.sprintf "prefer attribute %s larger\n" a
        | Attribute (a, `Smaller) ->
          Printf.sprintf "prefer attribute %s smaller\n" a
        | Formula f ->
          Printf.sprintf "prefer formula %s\n" (Core.Pref_formula.to_string f)))
    spec.prefs;
  match !error with None -> Ok (Buffer.contents buf) | Some e -> Error e

let print spec =
  match render spec with Ok s -> s | Error e -> invalid_arg e

let save path spec =
  match render spec with
  | Error _ as e -> e
  | Ok text -> (
    match
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc text)
    with
    | () -> Ok ()
    | exception Sys_error m -> Error m)
