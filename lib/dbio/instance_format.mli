(** A plain-text format for inconsistent-database instances.

    One declaration per line; [#] starts a comment. Example (the paper's
    running example with Example 3's reliability information):

    {v
    # integrated manager table
    relation Mgr(Name:name, Dept:name, Salary:int, Reports:int)
    fd Dept -> Name Salary Reports
    fd Name -> Dept Salary Reports
    tuple 'Mary' 'R&D' 40000 3  source=s1
    tuple 'John' 'R&D' 10000 2  source=s2
    tuple 'Mary' 'IT'  20000 1  source=s3
    tuple 'John' 'PR'  30000 4  source=s3
    prefer source s1 > s3
    prefer source s2 > s3
    v}

    Tuple values are parsed against the schema: [name] attributes accept
    quoted (['R&D']) or bare tokens, [int] attributes require integers.
    Optional [source=…] and [timestamp=…] annotations feed the preference
    rules. Preference declarations:

    - [prefer source S > S']  — source reliability (Example 3)
    - [prefer newest] / [prefer oldest]  — timestamp order (§1)
    - [prefer attribute A larger] / [... smaller]  — numeric attribute
    - [prefer formula F]  — an intrinsic preference formula over the
      designators t1 (preferred) and t2, e.g.
      [prefer formula t1.Salary > t2.Salary] (see {!Core.Pref_formula})

    Multiple [prefer] lines combine lexicographically in file order
    (source pairs are pooled into one reliability order first).

    Denial constraints (the paper's §6 generalization) are declared one
    per line in {!Constraints.Denial.to_string}'s form — an optional
    quoted label, the variable count, then the atoms:

    {v
    denial 'no-dup' forall 2 : t1.Name = t2.Name and t1.Dept != t2.Dept
    denial 'cap' forall 1 : t1.Salary > 100000
    v}

    They are well-formedness-checked against the schema with positioned
    errors, ride the snapshot alongside the FDs, and feed the conflict
    {e hypergraph} pipeline ({!Core.Hyper}) rather than the binary
    conflict graph. *)

open Relational

type pref =
  | Source_pair of string * string
  | Newest
  | Oldest
  | Attribute of string * [ `Larger | `Smaller ]
  | Formula of Core.Pref_formula.t

type spec = {
  relation : Relation.t;
  fds : Constraints.Fd.t list;
  denials : Constraints.Denial.t list;
  provenance : Provenance.t;
  prefs : pref list;
}

val parse : string -> (spec, string) result
(** Errors carry the 1-based line number. *)

val parse_pref : string -> (pref, string) result
(** Parse the body of a single [prefer] declaration, e.g.
    ["source s1 > s3"] or ["formula t1.B > t2.B"] — what follows the
    [prefer] keyword on a line. Used by the interactive shell. *)

val parse_file : string -> (spec, string) result

val to_rule : spec -> (Core.Pref_rules.rule, string) result
(** The combined preference rule declared by the spec (a rule that orders
    nothing if no [prefer] lines are present). *)

val render : spec -> (string, string) result
(** Renders a spec back to the textual format; [parse] of the result
    yields a spec with equal relation, FDs, provenance and preferences.
    Names containing quotes or backslashes are escaped ([\'], [\\]);
    names or sources containing unprintable bytes (below 0x20, or DEL)
    — which the line-oriented format cannot represent — are rejected
    with a clear error instead of writing a file that cannot be
    reloaded. *)

val print : spec -> string
(** [render], raising [Invalid_argument] on an unrepresentable spec. *)

val save : string -> spec -> (unit, string) result
(** [save path spec] writes [render spec] to [path]. Errors cover both
    unrepresentable specs and I/O failures. *)
