(** Shared codecs of the binary store.

    The value- and declaration-level encodings used by both {!Snapshot}
    (inside its checksummed body) and {!Wal} (inside each record). All
    encodings here are {e self-contained}: name constants travel as
    their bytes, never as intern ids — packed ids are process-local
    (see {!Relational.Intern}) and meaningless in a file. The
    snapshot's dense fact section, which {e does} use file-local
    dictionary ids, lives in {!Snapshot} itself.

    Decoders follow {!Binio}'s exception-style discipline: they raise
    [Binio.Corrupt] on malformed input and are meant to run under
    {!Binio.decode}. *)

open Relational

val w_schema : Buffer.t -> Schema.t -> unit
val r_schema : Binio.reader -> Schema.t

val w_value : Buffer.t -> Value.t -> unit
(** Tagged: [u8] 0 = name ([str]), 1 = int ([i64]). *)

val r_value : Binio.reader -> Value.t

val w_tuple : Buffer.t -> Tuple.t -> unit
(** [u32] arity followed by tagged values. *)

val r_tuple : Binio.reader -> Tuple.t

val w_info : Buffer.t -> Provenance.info -> unit
(** [u8] presence flags (bit 0 source, bit 1 timestamp) followed by the
    present fields. *)

val r_info : Binio.reader -> Provenance.info

val w_fd : Buffer.t -> Constraints.Fd.t -> unit
(** As its textual form ({!Constraints.Fd.to_string}) — one canonical
    parser on both paths. *)

val r_fd : Binio.reader -> Constraints.Fd.t

val w_denial : Buffer.t -> Constraints.Denial.t -> unit
(** As its textual form ({!Constraints.Denial.to_string}). *)

val r_denial : Binio.reader -> Constraints.Denial.t

val w_pref : Buffer.t -> Instance_format.pref -> unit
(** Tagged: 0 source pair, 1 newest, 2 oldest, 3 attribute (+[u8]
    direction, 0 larger / 1 smaller), 4 formula (textual form). *)

val r_pref : Binio.reader -> Instance_format.pref

val w_op : Buffer.t -> Core.Delta.op -> unit
(** Tagged: [u8] 0 insert, 1 delete, followed by the tuple. *)

val r_op : Binio.reader -> Core.Delta.op

val w_list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit
(** [u32] count followed by the elements. *)

val r_list : (Binio.reader -> 'a) -> Binio.reader -> 'a list
