(* --- writing ------------------------------------------------------------ *)

let w_u8 buf n =
  if n < 0 || n > 0xff then invalid_arg (Printf.sprintf "Binio.w_u8 %d" n);
  Buffer.add_char buf (Char.chr n)

let w_u32 buf n =
  if n < 0 || n > 0xffff_ffff then
    invalid_arg (Printf.sprintf "Binio.w_u32 %d" n);
  Buffer.add_int32_le buf (Int32.of_int n)

let w_i64 buf n = Buffer.add_int64_le buf (Int64.of_int n)

let w_str buf s =
  w_u32 buf (String.length s);
  Buffer.add_string buf s

(* Zigzag + LEB128: the fact section stores one integer per column per
   slot, and the bulk of real columns hold small values — a fixed i64
   spends seven bytes a value saying "zero". Zigzag folds the sign in
   (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...) so small negatives stay
   small; LEB128 then emits seven payload bits per byte, low bits
   first, high bit = continuation. An OCaml int has 63 bits, which is
   exactly nine LEB128 bytes, so a well-formed varint never exceeds
   nine bytes. *)
let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag z = (z lsr 1) lxor (-(z land 1))

let w_varint buf n =
  let z = ref (zigzag n) in
  while !z lsr 7 <> 0 do
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor (!z land 0x7f)));
    z := !z lsr 7
  done;
  Buffer.add_char buf (Char.unsafe_chr !z)

(* --- CRC-32 ------------------------------------------------------------- *)

(* IEEE 802.3 reflected polynomial — the same function zlib calls
   crc32. Slicing-by-8: table [k] advances a byte through [k] further
   zero bytes, so one iteration folds 8 input bytes with 8 independent
   table probes instead of a serial chain of 8 — the snapshot body CRC
   runs over tens of megabytes and the byte-at-a-time loop was a
   measurable slice of the whole load. *)
let crc_tables =
  lazy
    (let t0 =
       Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c :=
               if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c)
     in
     let ts = Array.init 8 (fun _ -> Array.make 256 0) in
     ts.(0) <- t0;
     for k = 1 to 7 do
       for n = 0 to 255 do
         let prev = ts.(k - 1).(n) in
         ts.(k).(n) <- (prev lsr 8) lxor t0.(prev land 0xff)
       done
     done;
     ts)

let crc32 s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Binio.crc32: out of bounds";
  let ts = Lazy.force crc_tables in
  let t0 = ts.(0) and t1 = ts.(1) and t2 = ts.(2) and t3 = ts.(3) in
  let t4 = ts.(4) and t5 = ts.(5) and t6 = ts.(6) and t7 = ts.(7) in
  (* bounds checked above; the per-byte check would double the loop cost *)
  let b i = Char.code (String.unsafe_get s i) in
  let c = ref 0xffff_ffff in
  let i = ref pos in
  let stop = pos + len in
  while stop - !i >= 8 do
    let p = !i in
    c :=
      Array.unsafe_get t7 ((!c lxor b p) land 0xff)
      lxor Array.unsafe_get t6 (((!c lsr 8) lxor b (p + 1)) land 0xff)
      lxor Array.unsafe_get t5 (((!c lsr 16) lxor b (p + 2)) land 0xff)
      lxor Array.unsafe_get t4 (((!c lsr 24) lxor b (p + 3)) land 0xff)
      lxor Array.unsafe_get t3 (b (p + 4))
      lxor Array.unsafe_get t2 (b (p + 5))
      lxor Array.unsafe_get t1 (b (p + 6))
      lxor Array.unsafe_get t0 (b (p + 7));
    i := p + 8
  done;
  while !i < stop do
    c := Array.unsafe_get t0 ((!c lxor b !i) land 0xff) lxor (!c lsr 8);
    incr i
  done;
  !c lxor 0xffff_ffff

(* --- reading ------------------------------------------------------------ *)

exception Corrupt of string

let fail msg = raise (Corrupt msg)

type reader = { src : string; limit : int; mutable cur : int }

let reader ?(pos = 0) ?len src =
  let len = match len with Some l -> l | None -> String.length src - pos in
  if pos < 0 || len < 0 || pos + len > String.length src then
    invalid_arg "Binio.reader: out of bounds";
  { src; limit = pos + len; cur = pos }

let pos r = r.cur
let remaining r = r.limit - r.cur

let need r n what =
  if remaining r < n then
    fail
      (Printf.sprintf "truncated input: need %d byte(s) for %s, have %d" n
         what (remaining r))

let r_u8_exn r =
  need r 1 "u8";
  let v = Char.code r.src.[r.cur] in
  r.cur <- r.cur + 1;
  v

(* The integer readers below compose bytes by hand instead of going
   through [String.get_int32_le]/[get_int64_le]: without flambda those
   return boxed [Int32.t]/[Int64.t], and the fact section reads one
   integer per column per slot — a boxed allocation apiece turns a
   bulk load into a GC workout. An OCaml int is 63-bit; a stored i64
   is its sign extension, so byte 7's top two bits must agree or the
   value cannot round-trip (checked in [r_i64_raw]). *)
let r_u32_exn r =
  need r 4 "u32";
  let s = r.src and p = r.cur in
  r.cur <- p + 4;
  Char.code (String.unsafe_get s p)
  lor (Char.code (String.unsafe_get s (p + 1)) lsl 8)
  lor (Char.code (String.unsafe_get s (p + 2)) lsl 16)
  lor (Char.code (String.unsafe_get s (p + 3)) lsl 24)

let r_str_exn r =
  let len = r_u32_exn r in
  need r len "string body";
  let v = String.sub r.src r.cur len in
  r.cur <- r.cur + len;
  v

(* Raw variants for fixed-width bulk sections: absolute-position reads
   with no per-field bounds check and no cursor mutation — the caller
   proves the whole section fits (via [remaining]), walks it by
   position arithmetic, then [advance]s past it in one step. This is
   what lets a million-slot fact array decode without four bounds
   checks and four cursor updates per slot. *)
let src r = r.src

let advance r n =
  if n < 0 || remaining r < n then
    fail
      (Printf.sprintf "truncated input: cannot advance %d byte(s), have %d" n
         (remaining r));
  r.cur <- r.cur + n

let get_u8 s p = Char.code (String.unsafe_get s p)

let get_i64 s p =
  let b i = Char.code (String.unsafe_get s (p + i)) in
  let b7 = b 7 in
  if b7 lsr 7 <> (b7 lsr 6) land 1 then
    fail
      (Printf.sprintf "i64 value %Ld does not fit an OCaml int"
         (String.get_int64_le s p));
  b 0
  lor (b 1 lsl 8)
  lor (b 2 lsl 16)
  lor (b 3 lsl 24)
  lor (b 4 lsl 32)
  lor (b 5 lsl 40)
  lor (b 6 lsl 48)
  lor (b7 lsl 56)

(* Varint readers: the cursor is a caller-held [int ref] so one ref
   cell serves a whole fact section. [get_varint] elides the
   per-byte limit check — the caller proves nine bytes fit first;
   [get_varint_checked] checks every byte and is what the section
   tail (and {!r_varint_exn}) use. Both reject a tenth byte: nine
   LEB128 bytes already carry all 63 bits. *)
let get_varint_long s pos b0 =
  let z = ref (b0 land 0x7f) in
  let shift = ref 7 in
  let q = ref (!pos + 1) in
  let cont = ref true in
  while !cont do
    if !shift > 56 then fail "overlong varint (more than 9 bytes)";
    let b = get_u8 s !q in
    incr q;
    z := !z lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b < 0x80 then cont := false
  done;
  pos := !q;
  unzigzag !z

(* single-byte values dominate real fact sections; keep that path
   small enough for cross-module inlining *)
let[@inline] get_varint s pos =
  let p = !pos in
  let b0 = get_u8 s p in
  if b0 < 0x80 then begin
    pos := p + 1;
    unzigzag b0
  end
  else get_varint_long s pos b0

let get_varint_checked s pos ~limit =
  let z = ref 0 in
  let shift = ref 0 in
  let q = ref !pos in
  let cont = ref true in
  while !cont do
    if !q >= limit then fail "truncated varint";
    if !shift > 56 then fail "overlong varint (more than 9 bytes)";
    let b = get_u8 s !q in
    incr q;
    z := !z lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b < 0x80 then cont := false
  done;
  pos := !q;
  unzigzag !z

let r_varint_exn r =
  let pos = ref r.cur in
  let v = get_varint_checked r.src pos ~limit:r.limit in
  r.cur <- !pos;
  v

let r_i64_exn r =
  need r 8 "i64";
  let v = get_i64 r.src r.cur in
  r.cur <- r.cur + 8;
  v

let decode r f = match f r with v -> Ok v | exception Corrupt m -> Error m

let r_u8 r = decode r r_u8_exn
let r_u32 r = decode r r_u32_exn
let r_i64 r = decode r r_i64_exn
let r_str r = decode r r_str_exn
