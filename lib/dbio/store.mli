(** The durable store: one directory, one snapshot, one log.

    Layout of a store directory:

    {v
    store.snap   binary snapshot (see Snapshot)
    wal.log      write-ahead log of mutations since the snapshot (see Wal)
    v}

    {!open_} loads the snapshot, replays the log (truncating a torn
    tail left by a crash mid-append, skipping records from generations
    before the snapshot's — leftovers of a {!checkpoint} whose
    truncation never reached the disk), and hands back the recovered
    spec together with a warm {!Core.Delta} engine whose fact ids,
    history depth and caches match the pre-crash process exactly —
    replay applies the very batches the original process applied, in
    order, through the same engine entry points.

    After open the caller owns the state's evolution; the store only
    journals it: call {!log} after each successful mutation (the
    ack-after-fsync point) and {!checkpoint} to fold the log into a
    fresh snapshot.

    {b The snapshot is the undo horizon.} A replayed engine's history
    reaches back only to the snapshot, so an [Undo] that would revert
    past the last checkpoint cannot re-apply on recovery; {!log}
    rejects it at append time (keeping the journal replayable) rather
    than letting a later {!open_} fail. Callers should mirror the
    horizon in the live engine with {!Core.Delta.drop_history} after a
    successful checkpoint, so the live and recovered sessions agree on
    what is undoable. *)

type t

val snapshot_path : string -> string
val wal_path : string -> string

val init : string -> Instance_format.spec -> (unit, string) result
(** Creates the directory if needed, writes the initial snapshot
    (generation 0) and an empty log. Fails if the spec's preferences
    are invalid (they would poison every subsequent open) or if a
    store already exists in the directory. *)

val open_ : string -> (t, string) result
(** Load + replay. Fails when the snapshot is missing or corrupt, or
    when a current-generation log record does not re-apply — both mean
    the store cannot be trusted. *)

val spec : t -> Instance_format.spec
(** The recovered spec, as of {!open_} (log replayed). *)

val engine : t -> Core.Delta.t
(** The warm engine, as of {!open_}. Mutable — the caller advances it;
    the store does not touch it afterwards. *)

val dir : t -> string

val generation : t -> int
(** The snapshot generation records currently journal against;
    incremented by every successful {!checkpoint}. *)

val log : t -> Wal.entry -> (unit, string) result
(** Append + fsync. Call only after the mutation succeeded in the
    engine — a logged record must re-apply on recovery — except for
    [Undo], which is safe to journal {e before} the engine undo (its
    replayability depends only on the journal, and rejection must
    precede the in-memory change). Rejects an [Undo] that would revert
    past the last snapshot. *)

val wal_records : t -> int
(** Current-generation records in the log (replayed at open + appended
    since, minus checkpoints). The serve loop's snapshot heuristic
    input. *)

val torn_bytes : t -> int
(** Bytes discarded from the log tail at open — nonzero after
    recovering from a crash mid-append. *)

val stale_records : t -> int
(** Records skipped at open because their generation predates the
    snapshot's — nonzero after recovering from a crash between a
    checkpoint's snapshot rename and its log truncation. *)

val checkpoint : t -> Instance_format.spec -> (unit, string) result
(** Atomically replace the snapshot with [spec] (the caller's current
    state) at the next generation, then empty the log. If the snapshot
    fails, the old snapshot + log pair is still intact. If only the
    truncation fails, the store is {e still consistent}: subsequent
    records journal against the new generation and the stale ones are
    skipped at the next open. *)

val close : t -> unit
