(** The write-ahead log.

    An append-only journal of the mutations applied since the last
    snapshot, replayed on open to bring the snapshot's state back to
    the moment of the crash. One record per committed mutation:

    - [Batch ops] — a {!Core.Delta.apply} batch (the shell's
      [insert]/[delete]);
    - [Undo] — a {!Core.Delta.undo} (replayed as an undo, {e not} as an
      inverse batch, so the engine's history depth matches too);
    - [Prefer p] — a preference added to the spec (rebuilds the engine,
      as the shell's [prefer] does).

    Wire format per record: 4-byte magic ["WALR"], [u32] payload
    length, payload, [u32] CRC-32 over the payload; the payload is a
    varint {e generation} (the snapshot generation the record was
    journaled against), a [u8] kind and the kind's body. Records are
    self-contained (names as bytes, no dictionary) so a record is
    decodable regardless of which snapshot precedes it; the generation
    is what ties it to one — {!Store} skips records older than the
    snapshot's generation at replay, the leftovers of a checkpoint
    whose truncation never reached the disk.

    Durability contract: {!append} performs a single [write] followed
    by [fsync] and only then returns — a mutation is acknowledged only
    once its record is on disk. A crash mid-append leaves a {e torn
    tail}: {!replay} stops at the first record whose magic, length or
    CRC does not check out and reports the clean prefix, which
    {!Store} truncates the file back to. *)

type entry =
  | Batch of Core.Delta.op list
  | Undo
  | Prefer of Instance_format.pref

type t
(** An open log, ready to append. *)

val open_append : string -> (t, string) result
(** Opens (creating if absent) for appending. *)

val append : t -> gen:int -> entry -> (unit, string) result
(** Encode (stamped with snapshot generation [gen]), write, fsync — in
    that order. Raises [Invalid_argument] on a negative [gen]. *)

val size : t -> int
(** Current byte size of the log file. *)

val truncate : t -> (unit, string) result
(** Empties the log (after a successful snapshot) and fsyncs. *)

val close : t -> unit

val replay : string -> ((int * entry) list * int * int, string) result
(** [replay path] is [(entries, clean_len, torn_bytes)]: every record
    of the longest valid prefix with the generation it carries, the
    byte length of that prefix, and how many trailing bytes were
    discarded as torn ([0] on a clean log). A missing file is an empty
    log. Only a malformed {e first} record position is distinguishable
    from a torn tail — both stop the scan — so corruption in the middle
    of a fsynced log surfaces as an unexpectedly large [torn_bytes],
    which {!Store} reports. *)

val decode_entry : string -> (int * entry, string) result
(** Decode one record payload (kind byte + payload body) — exposed for
    tests. *)
