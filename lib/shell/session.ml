open Relational
module IF = Dbio.Instance_format
module Family = Core.Family

type state = { spec : IF.spec option; family : Family.name }

let initial = { spec = None; family = Family.C }
let family st = st.family
let loaded st = st.spec

let help_text =
  "commands:\n\
  \  load FILE            load an instance file\n\
  \  family rep|l|s|g|c   select the preferred-repair family\n\
  \  info                 schema, constraints, conflicts\n\
  \  repairs [N]          enumerate (at most N) preferred repairs\n\
  \  count                count preferred repairs without enumerating\n\
  \  stats                inconsistency summary\n\
  \  facts                certain / disputed / excluded tuples\n\
  \  clean                run Algorithm 1\n\
  \  trace                run Algorithm 1 step by step\n\
  \  query Q              (preferred) consistent answer to Q\n\
  \  qtrace Q             answer plus the decomposition's work report\n\
  \  explain Q            answer with witness repairs\n\
  \  status VALUES        a tuple's conflicts and fate\n\
  \  aggregate SPEC       count | sum:A | min:A | max:A\n\
  \  prefer DECL          add a preference (as in the file format)\n\
  \  save FILE            write the instance and preferences back out\n\
  \  help                 this text\n\
  \  quit                 leave"

(* Build the evaluation context of the loaded instance. *)
let context spec =
  let c = Core.Conflict.build spec.IF.fds spec.IF.relation in
  match IF.to_rule spec with
  | Error e -> Error e
  | Ok rule -> (
    match Core.Pref_rules.apply c rule with
    | Error e -> Error e
    | Ok p -> Ok (c, p))

let with_context st k =
  match st.spec with
  | None -> "no instance loaded (use: load FILE)"
  | Some spec -> (
    match context spec with Error e -> "error: " ^ e | Ok (c, p) -> k spec c p)

let buffer_out k =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  k ppf;
  Format.pp_print_flush ppf ();
  (* drop one trailing newline for tidy echoing *)
  let s = Buffer.contents buf in
  if String.length s > 0 && s.[String.length s - 1] = '\n' then
    String.sub s 0 (String.length s - 1)
  else s

(* --- individual commands --------------------------------------------------- *)

let cmd_load st path =
  match IF.parse_file path with
  | Error e -> (st, "error: " ^ e)
  | Ok spec ->
    ( { st with spec = Some spec },
      Printf.sprintf "loaded %s: %d tuples, %d fd(s), %d preference(s)" path
        (Relation.cardinality spec.IF.relation)
        (List.length spec.IF.fds)
        (List.length spec.IF.prefs) )

let cmd_family st name =
  match Family.name_of_string name with
  | Some f -> ({ st with family = f }, "family: " ^ Family.name_to_string f)
  | None -> (st, Printf.sprintf "unknown family %S (use rep|l|s|g|c)" name)

let cmd_info st =
  with_context st (fun spec c p ->
      buffer_out (fun ppf ->
          let schema = Relation.schema spec.IF.relation in
          Format.fprintf ppf "relation: %a@." Schema.pp schema;
          Format.fprintf ppf "tuples:   %d@." (Relation.cardinality spec.IF.relation);
          List.iter
            (fun fd -> Format.fprintf ppf "fd:       %a@." Constraints.Fd.pp fd)
            spec.IF.fds;
          Format.fprintf ppf "conflicts: %d (%d oriented)@."
            (List.length (Core.Conflict.conflict_pairs c))
            (Core.Priority.arc_count p);
          Format.fprintf ppf "BCNF:     %b"
            (Constraints.Fd.is_bcnf schema spec.IF.fds)))

let cmd_repairs st limit =
  with_context st (fun _spec c p ->
      let repairs = Family.repairs st.family c p in
      buffer_out (fun ppf ->
          Format.fprintf ppf "%s: %d preferred repair(s)@."
            (Family.name_to_string st.family)
            (List.length repairs);
          List.iteri
            (fun i s ->
              if i < limit then begin
                Format.fprintf ppf "--- repair %d ---@." (i + 1);
                Relation.iter
                  (fun t -> Format.fprintf ppf "  %a@." Tuple.pp t)
                  (Core.Repair.to_relation c s)
              end)
            repairs;
          if List.length repairs > limit then
            Format.fprintf ppf "... (%d more)" (List.length repairs - limit)))

let cmd_count st =
  with_context st (fun _spec c p ->
      let d = Core.Decompose.make c p in
      Printf.sprintf "%s: %d preferred repair(s) across %d component(s)"
        (Family.name_to_string st.family)
        (Core.Decompose.count st.family d)
        (List.length (Core.Decompose.components d)))

let cmd_facts st =
  with_context st (fun _spec c p ->
      let d = Core.Decompose.make c p in
      let certain = Core.Decompose.certain_tuples st.family d in
      let possible = Core.Decompose.possible_tuples st.family d in
      let all = Graphs.Vset.of_range (Core.Conflict.size c) in
      buffer_out (fun ppf ->
          let show label s =
            Format.fprintf ppf "%s (%d):@." label (Graphs.Vset.cardinal s);
            Graphs.Vset.iter
              (fun v -> Format.fprintf ppf "  %a@." Tuple.pp (Core.Conflict.tuple c v))
              s
          in
          show "certain" certain;
          show "disputed" (Graphs.Vset.diff possible certain);
          show "excluded" (Graphs.Vset.diff all possible)))

let cmd_stats st =
  with_context st (fun _spec c p ->
      buffer_out (fun ppf ->
          Format.fprintf ppf "%a" Core.Stats.pp (Core.Stats.compute st.family c p)))

let cmd_clean st =
  with_context st (fun _spec c p ->
      let report = Core.Clean.run_with_priority c p in
      buffer_out (fun ppf ->
          Format.fprintf ppf "%a@." Core.Clean.pp_report report;
          Relation.iter
            (fun t -> Format.fprintf ppf "  %a@." Tuple.pp t)
            report.Core.Clean.cleaned))

let cmd_trace st =
  with_context st (fun _spec c p ->
      buffer_out (fun ppf ->
          Format.fprintf ppf "%a" (Core.Trace.pp c) (Core.Trace.clean c p)))

(* All query routes go through the component decomposition: ground
   queries hit the clause engine, quantified ones the deviation-scan
   streaming — both exponential only in the largest component. *)
let cmd_query st text =
  with_context st (fun _spec c p ->
      match Query.Parser.parse text with
      | Error e -> "error: " ^ e
      | Ok q ->
        let d = Core.Decompose.make c p in
        if Query.Ast.is_closed q then
          Printf.sprintf "%s: %s"
            (Family.name_to_string st.family)
            (Core.Cqa.certainty_to_string (Core.Decompose.certainty st.family d q))
        else begin
          let free, rows = Core.Decompose.consistent_answers_open st.family d q in
          buffer_out (fun ppf ->
              Format.fprintf ppf "certain answers (%s):@." (String.concat ", " free);
              List.iter
                (fun row ->
                  Format.fprintf ppf "  (%s)@."
                    (String.concat ", " (List.map Value.to_string row)))
                rows;
              Format.fprintf ppf "%d certain answer(s)" (List.length rows))
        end)

let cmd_qtrace st text =
  with_context st (fun _spec c p ->
      match Query.Parser.parse text with
      | Error e -> "error: " ^ e
      | Ok q ->
        if not (Query.Ast.is_closed q) then
          "error: qtrace requires a closed query"
        else
          let d = Core.Decompose.make c p in
          buffer_out (fun ppf ->
              Format.fprintf ppf "%a" Core.Trace.pp_cqa
                (Core.Trace.certainty st.family d q)))

let cmd_explain st text =
  with_context st (fun _spec c p ->
      match Query.Parser.parse text with
      | Error e -> "error: " ^ e
      | Ok q ->
        if not (Query.Ast.is_closed q) then "error: explain requires a closed query"
        else
          buffer_out (fun ppf ->
              Format.fprintf ppf "%a"
                (Core.Explain.pp_verdict c)
                (Core.Explain.query st.family c p q)))

let cmd_status st values =
  with_context st (fun spec c p ->
      let schema = Relation.schema spec.IF.relation in
      let schema_line =
        Printf.sprintf "relation %s(%s)" (Schema.name schema)
          (String.concat ", "
             (List.map
                (fun a ->
                  Printf.sprintf "%s:%s" a.Schema.attr_name
                    (match a.Schema.attr_ty with
                    | Schema.TName -> "name"
                    | Schema.TInt -> "int"))
                (Schema.attributes schema)))
      in
      match IF.parse (Printf.sprintf "%s\ntuple %s\n" schema_line values) with
      | Error e -> "error: " ^ e
      | Ok s -> (
        match Relation.tuples s.IF.relation with
        | [ t ] -> (
          match Core.Explain.tuple_status st.family c p t with
          | status ->
            buffer_out (fun ppf ->
                Format.fprintf ppf "%a" Core.Explain.pp_tuple_status status)
          | exception Invalid_argument m -> "error: " ^ m)
        | _ -> "error: expected exactly one tuple"))

let cmd_aggregate st spec_text =
  with_context st (fun _spec c p ->
      let agg =
        match String.split_on_char ':' spec_text with
        | [ "count" ] -> Ok Core.Aggregate.Count_all
        | [ "sum"; a ] -> Ok (Core.Aggregate.Sum a)
        | [ "min"; a ] -> Ok (Core.Aggregate.Min a)
        | [ "max"; a ] -> Ok (Core.Aggregate.Max a)
        | _ -> Error (Printf.sprintf "cannot parse aggregate %S" spec_text)
      in
      match agg with
      | Error e -> "error: " ^ e
      | Ok agg -> (
        match Core.Decompose.aggregate_range st.family (Core.Decompose.make c p) agg with
        | Error e -> "error: " ^ e
        | Ok r ->
          buffer_out (fun ppf ->
              Format.fprintf ppf "%s over %s repairs: %a"
                (Core.Aggregate.agg_to_string agg)
                (Family.name_to_string st.family)
                Core.Aggregate.pp_range r)))

let cmd_prefer st body =
  match st.spec with
  | None -> (st, "no instance loaded (use: load FILE)")
  | Some spec -> (
    match IF.parse_pref body with
    | Error e -> (st, "error: " ^ e)
    | Ok pref -> (
      let spec' = { spec with IF.prefs = spec.IF.prefs @ [ pref ] } in
      (* reject preference sets that no longer induce a valid priority *)
      match context spec' with
      | Error e -> (st, "error: preference rejected: " ^ e)
      | Ok (_, p) ->
        ( { st with spec = Some spec' },
          Printf.sprintf "preference added (%d conflict(s) now oriented)"
            (Core.Priority.arc_count p) )))

let cmd_save st path =
  match st.spec with
  | None -> (st, "no instance loaded (use: load FILE)")
  | Some spec -> (
    match
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (IF.print spec))
    with
    | () -> (st, "saved " ^ path)
    | exception Sys_error m -> (st, "error: " ^ m))

(* --- dispatch ---------------------------------------------------------------- *)

let split_command line =
  let trimmed = String.trim line in
  match String.index_opt trimmed ' ' with
  | None -> (trimmed, "")
  | Some i ->
    ( String.sub trimmed 0 i,
      String.trim (String.sub trimmed i (String.length trimmed - i)) )

let exec st line =
  let cmd, rest = split_command line in
  match (String.lowercase_ascii cmd, rest) with
  | "", "" -> (st, "")
  | "help", _ -> (st, help_text)
  | "load", "" -> (st, "usage: load FILE")
  | "load", path -> cmd_load st path
  | "family", name -> cmd_family st name
  | "info", _ -> (st, cmd_info st)
  | "repairs", "" -> (st, cmd_repairs st 20)
  | "repairs", n -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> (st, cmd_repairs st n)
    | _ -> (st, "usage: repairs [N]"))
  | "count", _ -> (st, cmd_count st)
  | "stats", _ -> (st, cmd_stats st)
  | "facts", _ -> (st, cmd_facts st)
  | "clean", _ -> (st, cmd_clean st)
  | "trace", _ -> (st, cmd_trace st)
  | "query", "" -> (st, "usage: query Q")
  | "query", q -> (st, cmd_query st q)
  | "qtrace", "" -> (st, "usage: qtrace Q")
  | "qtrace", q -> (st, cmd_qtrace st q)
  | "explain", "" -> (st, "usage: explain Q")
  | "explain", q -> (st, cmd_explain st q)
  | "status", "" -> (st, "usage: status VALUES")
  | "status", v -> (st, cmd_status st v)
  | "aggregate", "" -> (st, "usage: aggregate count|sum:A|min:A|max:A")
  | "aggregate", a -> (st, cmd_aggregate st a)
  | "prefer", "" -> (st, "usage: prefer source A > B | newest | oldest | attribute A larger|smaller | formula F")
  | "prefer", body -> cmd_prefer st body
  | "save", "" -> (st, "usage: save FILE")
  | "save", path -> cmd_save st path
  | other, _ ->
    (st, Printf.sprintf "unknown command %S (try: help)" other)
