open Relational
module IF = Dbio.Instance_format
module Family = Core.Family

type event =
  | Updated of Core.Delta.op list
  | Undone
  | Preferred of IF.pref

type state = {
  spec : IF.spec option;
  family : Family.name;
  engine : Core.Delta.t option;
      (* the incremental engine backing the loaded spec; [None] when no
         instance is loaded or its preferences don't induce a valid
         priority (commands then fall back to the rebuild path, which
         reports the error) *)
  observer : (event -> (unit, string) result) option;
      (* mutation hook — the serve loop's write-ahead-log append point *)
}

let initial = { spec = None; family = Family.C; engine = None; observer = None }
let family st = st.family
let loaded st = st.spec
let set_observer st f = { st with observer = Some f }

(* The observer is the durability gate: a mutation is committed to the
   session only once it is journaled. When the observer fails, the
   command rolls the in-memory change back (or never applies it) and
   reports an error — the served state must never diverge from what the
   journal can reproduce. *)
let notify st ev =
  match st.observer with None -> Ok () | Some f -> f ev

let drop_undo_history st =
  match st.engine with None -> () | Some eng -> Core.Delta.drop_history eng

let help_text =
  "commands:\n\
  \  load FILE            load an instance file\n\
  \  family rep|l|s|g|c   select the preferred-repair family\n\
  \  jobs [N]             show or set the domain count for parallel\n\
  \                       evaluation (1 = sequential)\n\
  \  info                 schema, constraints, conflicts\n\
  \  repairs [N]          enumerate (at most N) preferred repairs\n\
  \  count                count preferred repairs without enumerating\n\
  \  stats                inconsistency summary\n\
  \  facts                certain / disputed / excluded tuples\n\
  \  clean                run Algorithm 1\n\
  \  trace                run Algorithm 1 step by step\n\
  \  query Q              (preferred) consistent answer to Q\n\
  \  qtrace Q             answer plus the decomposition's work report\n\
  \  profile Q            answer plus a hierarchical time profile\n\
  \  explain Q            answer with witness repairs (and the physical\n\
  \                       plan the per-repair checks run)\n\
  \  plan Q               the cost-based physical plan for Q over the\n\
  \                       current instance, with estimated vs. actual\n\
  \                       cardinalities and chosen indexes\n\
  \  status VALUES        a tuple's conflicts and fate\n\
  \  aggregate SPEC       count | sum:A | min:A | max:A\n\
  \  insert VALUES        add a tuple (incremental: only touched\n\
  \                       components are recomputed)\n\
  \  delete VALUES        remove a tuple (incremental)\n\
  \  undo                 revert the most recent insert/delete\n\
  \  prefer DECL          add a preference (as in the file format)\n\
  \  denials              list the denial constraints in force\n\
  \  hyper [info]         the conflict hypergraph: edges, components\n\
  \  hyper count [FAM]    count preferred repairs on the hyperedge\n\
  \                       substrate (FAM: rep|pareto|global)\n\
  \  hyper repairs [FAM] [N]   enumerate (at most N) hyper repairs\n\
  \  hyper query [FAM] Q  certain answer under denial constraints\n\
  \  save FILE            write the instance and preferences back out\n\
  \  metrics              process metrics in Prometheus text format\n\
  \  help                 this text\n\
  \  quit                 leave"

(* Build the evaluation context of the loaded instance. *)
let context spec =
  let c = Core.Conflict.build spec.IF.fds spec.IF.relation in
  match IF.to_rule spec with
  | Error e -> Error e
  | Ok rule -> (
    match Core.Pref_rules.apply c rule with
    | Error e -> Error e
    | Ok p -> Ok (c, p))

let build_engine spec =
  match IF.to_rule spec with
  | Error e -> Error e
  | Ok rule -> Core.Delta.create ~rule spec.IF.fds spec.IF.relation

(* A session over an already-recovered spec — the serve loop's entry
   point, where the store (not a [load] command) owns the instance. *)
let of_spec ?engine spec =
  let engine =
    match engine with
    | Some _ as e -> e
    | None -> ( match build_engine spec with Ok e -> Some e | Error _ -> None)
  in
  { initial with spec = Some spec; engine }

let with_context st k =
  match st.spec with
  | None -> "no instance loaded (use: load FILE)"
  | Some spec -> (
    match st.engine with
    | Some eng -> k spec (Core.Delta.conflict eng) (Core.Delta.priority eng)
    | None -> (
      match context spec with Error e -> "error: " ^ e | Ok (c, p) -> k spec c p))

(* The decomposition to answer through: the engine's one accumulates its
   component-repair cache across commands and updates. *)
let decompose_of st c p =
  match st.engine with
  | Some eng -> Core.Delta.decompose eng
  | None -> Core.Decompose.make c p

let buffer_out k =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  k ppf;
  Format.pp_print_flush ppf ();
  (* drop one trailing newline for tidy echoing *)
  let s = Buffer.contents buf in
  if String.length s > 0 && s.[String.length s - 1] = '\n' then
    String.sub s 0 (String.length s - 1)
  else s

(* --- individual commands --------------------------------------------------- *)

let cmd_load st path =
  match IF.parse_file path with
  | Error e -> (st, "error: " ^ e)
  | Ok spec ->
    let engine =
      match build_engine spec with Ok e -> Some e | Error _ -> None
    in
    ( { st with spec = Some spec; engine },
      Printf.sprintf "loaded %s: %d tuples, %d fd(s), %d preference(s)%s" path
        (Relation.cardinality spec.IF.relation)
        (List.length spec.IF.fds)
        (List.length spec.IF.prefs)
        (match spec.IF.denials with
        | [] -> ""
        | ds -> Printf.sprintf ", %d denial(s)" (List.length ds)) )

let cmd_family st name =
  match Family.name_of_string name with
  | Some f -> ({ st with family = f }, "family: " ^ Family.name_to_string f)
  | None -> (st, Printf.sprintf "unknown family %S (use rep|l|s|g|c)" name)

let cmd_info st =
  with_context st (fun spec c p ->
      buffer_out (fun ppf ->
          let schema = Relation.schema spec.IF.relation in
          Format.fprintf ppf "relation: %a@." Schema.pp schema;
          Format.fprintf ppf "tuples:   %d@." (Relation.cardinality spec.IF.relation);
          Format.fprintf ppf "interned: %d symbol(s)@." (Intern.count ());
          Format.fprintf ppf "domains:  %d@." (Core.Pool.jobs ());
          List.iter
            (fun fd -> Format.fprintf ppf "fd:       %a@." Constraints.Fd.pp fd)
            spec.IF.fds;
          Format.fprintf ppf "conflicts: %d (%d oriented)@."
            (List.length (Core.Conflict.conflict_pairs c))
            (Core.Priority.arc_count p);
          Format.fprintf ppf "BCNF:     %b"
            (Constraints.Fd.is_bcnf schema spec.IF.fds)))

let cmd_repairs st limit =
  with_context st (fun _spec c p ->
      let repairs = Family.repairs st.family c p in
      buffer_out (fun ppf ->
          Format.fprintf ppf "%s: %d preferred repair(s)@."
            (Family.name_to_string st.family)
            (List.length repairs);
          List.iteri
            (fun i s ->
              if i < limit then begin
                Format.fprintf ppf "--- repair %d ---@." (i + 1);
                Relation.iter
                  (fun t -> Format.fprintf ppf "  %a@." Tuple.pp t)
                  (Core.Repair.to_relation c s)
              end)
            repairs;
          if List.length repairs > limit then
            Format.fprintf ppf "... (%d more)" (List.length repairs - limit)))

let cmd_count st =
  with_context st (fun _spec c p ->
      let d = decompose_of st c p in
      Printf.sprintf "%s: %d preferred repair(s) across %d component(s)"
        (Family.name_to_string st.family)
        (Core.Decompose.count st.family d)
        (Core.Decompose.component_count d))

let cmd_facts st =
  with_context st (fun _spec c p ->
      let d = decompose_of st c p in
      let certain = Core.Decompose.certain_tuples st.family d in
      let possible = Core.Decompose.possible_tuples st.family d in
      let all = Core.Conflict.live c in
      buffer_out (fun ppf ->
          let show label s =
            Format.fprintf ppf "%s (%d):@." label (Graphs.Vset.cardinal s);
            Graphs.Vset.iter
              (fun v -> Format.fprintf ppf "  %a@." Tuple.pp (Core.Conflict.tuple c v))
              s
          in
          show "certain" certain;
          show "disputed" (Graphs.Vset.diff possible certain);
          show "excluded" (Graphs.Vset.diff all possible)))

let cmd_stats st =
  with_context st (fun spec c p ->
      buffer_out (fun ppf ->
          Format.fprintf ppf "%a@." Core.Stats.pp
            (Core.Stats.compute_with st.family (decompose_of st c p));
          (* column statistics feed the query planner's cost model; the
             engine's copy is patched in place by every update batch, so
             its scan/patch counters double as the invalidation log *)
          let cs =
            match st.engine with
            | Some eng -> Core.Delta.column_stats eng
            | None -> Planner.Stats.scan spec.IF.relation
          in
          Format.fprintf ppf "%a" Planner.Stats.pp cs))

let cmd_clean st =
  with_context st (fun _spec c p ->
      let report = Core.Clean.run_with_priority c p in
      buffer_out (fun ppf ->
          Format.fprintf ppf "%a@." Core.Clean.pp_report report;
          Relation.iter
            (fun t -> Format.fprintf ppf "  %a@." Tuple.pp t)
            report.Core.Clean.cleaned))

let cmd_trace st =
  with_context st (fun _spec c p ->
      buffer_out (fun ppf ->
          Format.fprintf ppf "%a" (Core.Trace.pp c) (Core.Trace.clean c p)))

(* All query routes go through the component decomposition: ground
   queries hit the clause engine, quantified ones the deviation-scan
   streaming — both exponential only in the largest component. *)
let cmd_query st text =
  with_context st (fun _spec c p ->
      match Query.Parser.parse text with
      | Error e -> "error: " ^ e
      | Ok q ->
        let d = decompose_of st c p in
        if Query.Ast.is_closed q then
          Printf.sprintf "%s: %s"
            (Family.name_to_string st.family)
            (Core.Cqa.certainty_to_string (Core.Decompose.certainty st.family d q))
        else begin
          let free, rows = Core.Decompose.consistent_answers_open st.family d q in
          buffer_out (fun ppf ->
              Format.fprintf ppf "certain answers (%s):@." (String.concat ", " free);
              List.iter
                (fun row ->
                  Format.fprintf ppf "  (%s)@."
                    (String.concat ", " (List.map Value.to_string row)))
                rows;
              Format.fprintf ppf "%d certain answer(s)" (List.length rows))
        end)

let cmd_qtrace st text =
  with_context st (fun _spec c p ->
      match Query.Parser.parse text with
      | Error e -> "error: " ^ e
      | Ok q ->
        if not (Query.Ast.is_closed q) then
          "error: qtrace requires a closed query"
        else
          let d = decompose_of st c p in
          buffer_out (fun ppf ->
              Format.fprintf ppf "%a" Core.Trace.pp_cqa
                (Core.Trace.certainty st.family d q)))

(* Run the query with a local memory sink installed, print the profile
   tree next to the verdict. If the session already traces to a sink
   (--trace-out), tee into it so the events reach both. *)
let cmd_profile st text =
  with_context st (fun _spec c p ->
      match Query.Parser.parse text with
      | Error e -> "error: " ^ e
      | Ok q ->
        if not (Query.Ast.is_closed q) then
          "error: profile requires a closed query"
        else begin
          let buf = Obs.Sink.Memory.create () in
          let local = Obs.Sink.Memory.sink buf in
          let outer = Obs.Span.sink () in
          let sink =
            match outer with None -> local | Some s -> Obs.Sink.tee local s
          in
          Obs.Span.set_sink (Some sink);
          let restore () = Obs.Span.set_sink outer in
          match
            let d = decompose_of st c p in
            Core.Decompose.certainty st.family d q
          with
          | verdict ->
            restore ();
            buffer_out (fun ppf ->
                Format.fprintf ppf "%s: %s@."
                  (Family.name_to_string st.family)
                  (Core.Cqa.certainty_to_string verdict);
                Format.fprintf ppf "%a" Obs.Profile.pp
                  (Obs.Profile.tree (Obs.Sink.Memory.events buf)))
          | exception e ->
            restore ();
            raise e
        end)

(* The planner's view of the loaded instance: the (dirty) relation as a
   one-relation database, costed with the engine's incrementally patched
   column statistics when an engine is live. *)
let planner_db spec = Database.of_relations [ spec.IF.relation ]

let stats_of st =
  match st.engine with
  | Some eng -> Some (Core.Delta.stats_lookup eng)
  | None -> None

let planner_report st spec q =
  Planner.Explain.run ?stats:(stats_of st) (planner_db spec) q

let cmd_plan st text =
  with_context st (fun spec _c _p ->
      match Query.Parser.parse text with
      | Error e -> "error: " ^ e
      | Ok q -> (
        match planner_report st spec q with
        | report -> buffer_out (fun ppf -> Planner.Explain.pp ppf report)
        | exception Invalid_argument m -> "error: " ^ m))

let plan_json st text =
  match st.spec with
  | None -> Error "no instance loaded (use: load FILE)"
  | Some spec -> (
    match Query.Parser.parse text with
    | Error e -> Error e
    | Ok q -> (
      match planner_report st spec q with
      | report -> Ok (Planner.Explain.to_json report)
      | exception Invalid_argument m -> Error m))

(* One planner run rendered both ways — the slow-query log wants the
   text and the JSON of the same report without executing twice. *)
let explain_report st text =
  match st.spec with
  | None -> Error "no instance loaded (use: load FILE)"
  | Some spec -> (
    match Query.Parser.parse text with
    | Error e -> Error e
    | Ok q -> (
      match planner_report st spec q with
      | report ->
        Ok
          ( buffer_out (fun ppf -> Planner.Explain.pp ppf report),
            Planner.Explain.to_json report )
      | exception Invalid_argument m -> Error m))

let cmd_explain st text =
  with_context st (fun spec c p ->
      match Query.Parser.parse text with
      | Error e -> "error: " ^ e
      | Ok q ->
        if not (Query.Ast.is_closed q) then "error: explain requires a closed query"
        else
          buffer_out (fun ppf ->
              (* the plan every per-repair certainty check executes,
                 shown over the current instance *)
              Format.fprintf ppf "%a@." Planner.Explain.pp_plan_only
                (planner_report st spec q);
              Format.fprintf ppf "%a"
                (Core.Explain.pp_verdict c)
                (Core.Explain.query st.family c p q)))

(* Parse VALUES against the loaded schema by round-tripping a one-tuple
   instance document — shared by [status], [insert] and [delete]. *)
let parse_tuple spec values =
  let schema = Relation.schema spec.IF.relation in
  let schema_line =
    Printf.sprintf "relation %s(%s)" (Schema.name schema)
      (String.concat ", "
         (List.map
            (fun a ->
              Printf.sprintf "%s:%s" a.Schema.attr_name
                (match a.Schema.attr_ty with
                | Schema.TName -> "name"
                | Schema.TInt -> "int"))
            (Schema.attributes schema)))
  in
  match IF.parse (Printf.sprintf "%s\ntuple %s\n" schema_line values) with
  | Error e -> Error e
  | Ok s -> (
    match Relation.tuples s.IF.relation with
    | [ t ] -> Ok t
    | _ -> Error "expected exactly one tuple")

let cmd_status st values =
  with_context st (fun spec c p ->
      match parse_tuple spec values with
      | Error e -> "error: " ^ e
      | Ok t -> (
        match Core.Explain.tuple_status st.family c p t with
        | status ->
          buffer_out (fun ppf ->
              Format.fprintf ppf "%a" Core.Explain.pp_tuple_status status)
        | exception Invalid_argument m -> "error: " ^ m))

let cmd_aggregate st spec_text =
  with_context st (fun _spec c p ->
      let agg =
        match String.split_on_char ':' spec_text with
        | [ "count" ] -> Ok Core.Aggregate.Count_all
        | [ "sum"; a ] -> Ok (Core.Aggregate.Sum a)
        | [ "min"; a ] -> Ok (Core.Aggregate.Min a)
        | [ "max"; a ] -> Ok (Core.Aggregate.Max a)
        | _ -> Error (Printf.sprintf "cannot parse aggregate %S" spec_text)
      in
      match agg with
      | Error e -> "error: " ^ e
      | Ok agg -> (
        match Core.Decompose.aggregate_range st.family (decompose_of st c p) agg with
        | Error e -> "error: " ^ e
        | Ok r ->
          buffer_out (fun ppf ->
              Format.fprintf ppf "%s over %s repairs: %a"
                (Core.Aggregate.agg_to_string agg)
                (Family.name_to_string st.family)
                Core.Aggregate.pp_range r)))

(* After an engine update, keep the stored spec's relation in sync so
   [save]/[info]/[prefer] see the current instance. *)
let sync_spec st eng =
  match st.spec with
  | None -> st
  | Some spec ->
    { st with spec = Some { spec with IF.relation = Core.Delta.relation eng } }

let cmd_update st mk values =
  match st.spec with
  | None -> (st, "no instance loaded (use: load FILE)")
  | Some spec -> (
    match st.engine with
    | None ->
      ( st,
        "error: updates need a valid preference context (fix the \
         preferences first)" )
    | Some eng -> (
      match parse_tuple spec values with
      | Error e -> (st, "error: " ^ e)
      | Ok t -> (
        let ops = mk t in
        match Core.Delta.apply eng ops with
        | Error e -> (st, "error: " ^ e)
        | Ok report -> (
          match notify st (Updated ops) with
          | Ok () ->
            ( sync_spec st eng,
              buffer_out (fun ppf -> Core.Delta.pp_report ppf report) )
          | Error e ->
            (* journaling failed: revert the batch we just applied so
               the session keeps matching what the journal replays (the
               inverse of an accepted batch always applies) *)
            ignore (Core.Delta.undo eng);
            (st, "error: not journaled (change rolled back): " ^ e)))))

let cmd_insert st values = cmd_update st (fun t -> [ Core.Delta.Insert t ]) values
let cmd_delete st values = cmd_update st (fun t -> [ Core.Delta.Delete t ]) values

let cmd_undo st =
  match (st.spec, st.engine) with
  | None, _ -> (st, "no instance loaded (use: load FILE)")
  | Some _, None -> (st, "error: nothing to undo")
  | Some _, Some eng ->
    if Core.Delta.history_depth eng = 0 then (st, "error: nothing to undo")
    else (
      (* journal before undoing: whether an undo is replayable depends
         only on the journal (the store rejects one that would revert
         past the last snapshot), and once journaled the undo itself
         cannot fail — the history is non-empty *)
      match notify st Undone with
      | Error e -> (st, "error: not journaled (nothing undone): " ^ e)
      | Ok () -> (
        match Core.Delta.undo eng with
        | Error e -> (st, "error: " ^ e)
        | Ok report ->
          ( sync_spec st eng,
            buffer_out (fun ppf -> Core.Delta.pp_report ppf report) )))

let cmd_prefer st body =
  match st.spec with
  | None -> (st, "no instance loaded (use: load FILE)")
  | Some spec -> (
    match IF.parse_pref body with
    | Error e -> (st, "error: " ^ e)
    | Ok pref -> (
      let spec' = { spec with IF.prefs = spec.IF.prefs @ [ pref ] } in
      (* reject preference sets that no longer induce a valid priority *)
      match context spec' with
      | Error e -> (st, "error: preference rejected: " ^ e)
      | Ok (_, p) -> (
        (* a global preference change invalidates every cached repair
           list: rebuild the engine (cold cache, fresh history) — built
           before journaling, committed only after, so a failed append
           leaves the session on the old preference set *)
        let engine =
          match build_engine spec' with Ok e -> Some e | Error _ -> None
        in
        match notify st (Preferred pref) with
        | Ok () ->
          ( { st with spec = Some spec'; engine },
            Printf.sprintf "preference added (%d conflict(s) now oriented)"
              (Core.Priority.arc_count p) )
        | Error e -> (st, "error: not journaled (preference dropped): " ^ e))))

(* --- hyper: denial-constraint CQA over the hyperedge substrate ------------- *)

(* The denial constraints in force: the spec's own [denial] declarations
   or — when none are declared — the FDs compiled to denial form, so the
   hyper commands answer out of the box on any loaded instance. *)
let denials_of spec =
  match spec.IF.denials with
  | [] ->
    let schema = Relation.schema spec.IF.relation in
    List.concat_map (Constraints.Denial.of_fd schema) spec.IF.fds
  | dcs -> dcs

(* The hyper context is rebuilt per command: denial CQA is the
   analytical side door, not the serve loop's hot path, and a fresh
   build keeps it honest against the current relation. *)
let hyper_context spec =
  match Core.Hyper.build (denials_of spec) spec.IF.relation with
  | exception Invalid_argument m -> Error m
  | h -> (
    match IF.to_rule spec with
    | Error e -> Error e
    | Ok rule -> (
      match Core.Hpriority.of_rule h rule with
      | Error e -> Error e
      | Ok p -> Ok (h, p)))

let with_hyper st k =
  match st.spec with
  | None -> "no instance loaded (use: load FILE)"
  | Some spec -> (
    match hyper_context spec with
    | Error e -> "error: " ^ e
    | Ok (h, p) -> k spec h p)

let cmd_denials st =
  match st.spec with
  | None -> "no instance loaded (use: load FILE)"
  | Some spec ->
    buffer_out (fun ppf ->
        let dcs = denials_of spec in
        Format.fprintf ppf "%d denial constraint(s)%s@." (List.length dcs)
          (if spec.IF.denials = [] && dcs <> [] then " (compiled from the fds)"
           else "");
        List.iter
          (fun dc ->
            Format.fprintf ppf "  %s@." (Constraints.Denial.to_string dc))
          dcs)

let cmd_hyper_info st =
  with_hyper st (fun spec h p ->
      let d = Core.Hdecompose.make h p in
      buffer_out (fun ppf ->
          let dcs = denials_of spec in
          Format.fprintf ppf "denials:    %d%s@." (List.length dcs)
            (if spec.IF.denials = [] && dcs <> [] then
               " (compiled from the fds)"
             else "");
          Format.fprintf ppf "facts:      %d live@."
            (Graphs.Vset.cardinal (Core.Hyper.live h));
          Format.fprintf ppf "hyperedges: %d@."
            (Graphs.Hypergraph.edge_count (Core.Hyper.hypergraph h));
          Format.fprintf ppf "oriented:   %d arc(s)@."
            (Core.Hpriority.arc_count p);
          Format.fprintf ppf "components: %d (largest %d)@."
            (Core.Hdecompose.component_count d)
            (Core.Hdecompose.max_component d);
          Format.fprintf ppf "consistent: %b" (Core.Hyper.is_consistent h)))

let cmd_hyper_count st fam =
  with_hyper st (fun _spec h p ->
      let d = Core.Hdecompose.make h p in
      Printf.sprintf "%s: %d preferred repair(s) across %d component(s)"
        (Core.Hfamily.name_to_string fam)
        (Core.Hdecompose.count fam d)
        (Core.Hdecompose.component_count d))

let cmd_hyper_repairs st fam limit =
  with_hyper st (fun _spec h p ->
      let repairs = Core.Hfamily.repairs fam h p in
      buffer_out (fun ppf ->
          Format.fprintf ppf "%s: %d preferred repair(s)@."
            (Core.Hfamily.name_to_string fam)
            (List.length repairs);
          List.iteri
            (fun i s ->
              if i < limit then begin
                Format.fprintf ppf "--- repair %d ---@." (i + 1);
                Relation.iter
                  (fun t -> Format.fprintf ppf "  %a@." Tuple.pp t)
                  (Core.Hyper.to_relation h s)
              end)
            repairs;
          if List.length repairs > limit then
            Format.fprintf ppf "... (%d more)" (List.length repairs - limit)))

let cmd_hyper_query st fam text =
  with_hyper st (fun _spec h p ->
      match Query.Parser.parse text with
      | Error e -> "error: " ^ e
      | Ok q ->
        if not (Query.Ast.is_closed q) then
          "error: hyper query requires a closed query"
        else
          let d = Core.Hdecompose.make h p in
          Printf.sprintf "%s: %s"
            (Core.Hfamily.name_to_string fam)
            (Core.Cqa.certainty_to_string (Core.Hdecompose.certainty fam d q)))

let cmd_save st path =
  match st.spec with
  | None -> (st, "no instance loaded (use: load FILE)")
  | Some spec -> (
    match IF.save path spec with
    | Ok () -> (st, "saved " ^ path)
    | Error m -> (st, "error: " ^ m))

(* --- dispatch ---------------------------------------------------------------- *)

let split_command line =
  let trimmed = String.trim line in
  match String.index_opt trimmed ' ' with
  | None -> (trimmed, "")
  | Some i ->
    ( String.sub trimmed 0 i,
      String.trim (String.sub trimmed i (String.length trimmed - i)) )

let hyper_usage =
  "usage: hyper [info] | hyper count [FAM] | hyper repairs [FAM] [N] | hyper \
   query [FAM] Q   (FAM: rep|pareto|global; default rep)"

(* An optional leading family token; everything else is the argument. *)
let pop_hyper_family arg =
  let tok, rest = split_command arg in
  match Core.Hfamily.name_of_string tok with
  | Some f -> (f, rest)
  | None -> (Core.Hfamily.Rep, arg)

let cmd_hyper st rest =
  let sub, arg = split_command rest in
  match (String.lowercase_ascii sub, arg) with
  | ("" | "info"), "" -> cmd_hyper_info st
  | "count", arg -> (
    match pop_hyper_family arg with
    | fam, "" -> cmd_hyper_count st fam
    | _ -> hyper_usage)
  | "repairs", arg -> (
    match pop_hyper_family arg with
    | fam, "" -> cmd_hyper_repairs st fam 20
    | fam, n -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> cmd_hyper_repairs st fam n
      | _ -> hyper_usage))
  | "query", arg -> (
    match pop_hyper_family arg with
    | _, "" -> hyper_usage
    | fam, q -> cmd_hyper_query st fam q)
  | _ -> hyper_usage

let exec st line =
  let cmd, rest = split_command line in
  let cmd = String.lowercase_ascii cmd in
  (* every command runs inside a [shell.<cmd>] span, so a session-wide
     trace sink (--trace-out) captures interactive work — stats, qtrace,
     updates — with the same nesting as the CLI paths *)
  let run () =
    match (cmd, rest) with
    | "", "" -> (st, "")
    | "help", _ -> (st, help_text)
    | "load", "" -> (st, "usage: load FILE")
    | "load", path -> cmd_load st path
    | "family", name -> cmd_family st name
    | "jobs", "" -> (st, Printf.sprintf "domains: %d" (Core.Pool.jobs ()))
    | "jobs", n -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        Core.Pool.set_jobs n;
        (st, Printf.sprintf "domains: %d" (Core.Pool.jobs ()))
      | _ -> (st, "usage: jobs [N]  (N >= 1)"))
    | "info", _ -> (st, cmd_info st)
    | "repairs", "" -> (st, cmd_repairs st 20)
    | "repairs", n -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> (st, cmd_repairs st n)
      | _ -> (st, "usage: repairs [N]"))
    | "count", _ -> (st, cmd_count st)
    | "stats", _ -> (st, cmd_stats st)
    | "facts", _ -> (st, cmd_facts st)
    | "clean", _ -> (st, cmd_clean st)
    | "trace", _ -> (st, cmd_trace st)
    | "query", "" -> (st, "usage: query Q")
    | "query", q -> (st, cmd_query st q)
    | "qtrace", "" -> (st, "usage: qtrace Q")
    | "qtrace", q -> (st, cmd_qtrace st q)
    | "profile", "" -> (st, "usage: profile Q")
    | "profile", q -> (st, cmd_profile st q)
    | "explain", "" -> (st, "usage: explain Q")
    | "explain", q -> (st, cmd_explain st q)
    | "plan", "" -> (st, "usage: plan Q")
    | "plan", q -> (st, cmd_plan st q)
    | "status", "" -> (st, "usage: status VALUES")
    | "status", v -> (st, cmd_status st v)
    | "insert", "" -> (st, "usage: insert VALUES")
    | "insert", v -> cmd_insert st v
    | "delete", "" -> (st, "usage: delete VALUES")
    | "delete", v -> cmd_delete st v
    | "undo", _ -> cmd_undo st
    | "aggregate", "" -> (st, "usage: aggregate count|sum:A|min:A|max:A")
    | "aggregate", a -> (st, cmd_aggregate st a)
    | "prefer", "" -> (st, "usage: prefer source A > B | newest | oldest | attribute A larger|smaller | formula F")
    | "prefer", body -> cmd_prefer st body
    | "denials", _ -> (st, cmd_denials st)
    | "hyper", rest -> (st, cmd_hyper st rest)
    | "save", "" -> (st, "usage: save FILE")
    | "save", path -> cmd_save st path
    | "metrics", _ -> (st, Obs.Registry.render ())
    | other, _ -> (st, Printf.sprintf "unknown command %S (try: help)" other)
  in
  if cmd = "" then run () else Obs.Span.with_span ("shell." ^ cmd) run

(* Error outputs all share a recognizable prefix; the non-interactive
   driver uses this to decide its exit code. *)
let is_error_output out =
  let prefixed p =
    String.length out >= String.length p && String.sub out 0 (String.length p) = p
  in
  prefixed "error" || prefixed "unknown command" || prefixed "usage:"
  || prefixed "no instance loaded"
