module IF = Dbio.Instance_format

let socket_path dir = Filename.concat dir "serve.sock"
let pid_path dir = Filename.concat dir "serve.pid"
let log_path dir = Filename.concat dir "serve.log"

(* --- wire framing ------------------------------------------------------- *)

(* Text responses are byte-count framed — outputs are multi-line, so a
   terminator would be ambiguous. JSON responses are one object per
   line, self-delimiting. *)
let send_text oc ~ok out =
  Printf.fprintf oc "%s %d\n%s" (if ok then "ok" else "error")
    (String.length out) out;
  flush oc

let send_json oc ~ok ?(extra = []) out =
  output_string oc
    (Obs.Json.to_string
       (Obs.Json.Obj
          ([ ("ok", Obs.Json.Bool ok); ("output", Obs.Json.Str out) ] @ extra)));
  output_char oc '\n';
  flush oc

let read_text_response ic =
  let header = input_line ic in
  match String.index_opt header ' ' with
  | None -> Error (Printf.sprintf "malformed response header %S" header)
  | Some sp -> (
    let status = String.sub header 0 sp in
    let len = String.sub header (sp + 1) (String.length header - sp - 1) in
    match (status, int_of_string_opt len) with
    | ("ok" | "error"), Some n when n >= 0 ->
      let body = really_input_string ic n in
      if status = "ok" then Ok body else Error body
    | _ -> Error (Printf.sprintf "malformed response header %S" header))

(* --- client side -------------------------------------------------------- *)

let with_connection dir k =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX (socket_path dir)) with
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "%s: cannot connect: %s" (socket_path dir)
         (Unix.error_message err))
  | () ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        match k ic oc with
        | v -> v
        | exception End_of_file -> Error "connection closed by server"
        | exception Sys_error m -> Error m)

let request dir cmd =
  with_connection dir (fun ic oc ->
      output_string oc cmd;
      output_char oc '\n';
      flush oc;
      read_text_response ic)

let request_json dir cmd =
  with_connection dir (fun ic oc ->
      output_string oc
        (Obs.Json.to_string (Obs.Json.Obj [ ("cmd", Obs.Json.Str cmd) ]));
      output_char oc '\n';
      flush oc;
      Obs.Json.of_string (input_line ic))

let ping dir = match request dir "ping" with Ok "pong" -> true | _ -> false

(* --- request handling --------------------------------------------------- *)

type reply = {
  ok : bool;
  output : string;
  stop : bool;
  bye : bool;
  extra : (string * Obs.Json.t) list;
      (* structured fields attached to the JSON framing only (the text
         framing already carries the same content rendered) *)
}

let reply ?(stop = false) ?(bye = false) ?(extra = []) ok output =
  { ok; output; stop; bye; extra }

let first_word line =
  let line = String.trim line in
  match String.index_opt line ' ' with
  | None -> String.lowercase_ascii line
  | Some i -> String.lowercase_ascii (String.sub line 0 i)

let rest_of line =
  let line = String.trim line in
  match String.index_opt line ' ' with
  | None -> ""
  | Some i -> String.trim (String.sub line i (String.length line - i))

(* The server-level commands sit outside the session language: liveness,
   checkpointing and lifecycle are the store's business, not the
   interpreter's. [load] is rejected — in serve mode the store owns the
   instance, and swapping it out from under the log would desynchronize
   snapshot and journal. *)
let handle store session line =
  match first_word line with
  | "ping" -> (session, reply true "pong")
  | "shutdown" -> (session, reply true "shutting down" ~stop:true)
  | "quit" | "exit" -> (session, reply true "bye" ~bye:true)
  | "load" ->
    ( session,
      reply false
        "error: load is disabled in serve mode (the store owns the instance)"
    )
  | "snapshot" -> (
    match Session.loaded session with
    | None -> (session, reply false "error: no instance loaded")
    | Some spec -> (
      match Dbio.Store.checkpoint store spec with
      | Ok () ->
        (* a recovered engine's history reaches back only to the
           snapshot; drop the live history too so both sides agree the
           checkpoint is the undo horizon *)
        Session.drop_undo_history session;
        ( session,
          reply true
            (Printf.sprintf
               "snapshot written to %s (wal truncated; undo history reset)"
               (Dbio.Store.snapshot_path (Dbio.Store.dir store))) )
      | Error e -> (session, reply false ("error: " ^ e))))
  | _ ->
    let session, out = Session.exec session line in
    let ok = not (Session.is_error_output out) in
    (* [plan]/[explain] responses also carry the physical plan as a
       structured "plan" field, so JSON clients need not parse the
       rendered tree *)
    let extra =
      match first_word line with
      | ("plan" | "explain") when ok -> (
        match Session.plan_json session (rest_of line) with
        | Ok j -> [ ("plan", j) ]
        | Error _ -> [])
      | _ -> []
    in
    (session, reply ~extra ok out)

let handle_request store session raw =
  let json = String.length raw > 0 && raw.[0] = '{' in
  let line =
    if not json then Ok raw
    else
      match Obs.Json.of_string raw with
      | Error e -> Error (Printf.sprintf "error: bad request json: %s" e)
      | Ok j -> (
        match Obs.Json.member "cmd" j with
        | Some (Obs.Json.Str cmd) -> Ok cmd
        | Some _ -> Error "error: \"cmd\" must be a string"
        | None -> Error "error: request object needs a \"cmd\" field")
  in
  match line with
  | Error msg -> (session, reply false msg, json)
  | Ok line ->
    let session, r =
      Obs.Span.with_span "serve.request"
        ~args:[ ("cmd", Obs.Event.Str (first_word line)) ]
        (fun () -> handle store session line)
    in
    (session, r, json)

(* --- the serve loop ----------------------------------------------------- *)

let write_pid_file dir =
  Out_channel.with_open_text (pid_path dir) (fun oc ->
      Printf.fprintf oc "%d\n" (Unix.getpid ()))

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()

(* Connections are served one at a time, so a client that connects and
   goes quiet must not wedge the loop: every read and write on the
   accepted socket carries a timeout, after which the connection is
   dropped (the timed-out syscall surfaces as [Sys_error] through the
   channel layer) and the next client — including a [shutdown] — is
   accepted. Well-behaved clients open a connection per request and are
   far inside the budget. *)
let idle_timeout = 10.0

let serve_connection store session_ref stop_ref fd =
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO idle_timeout;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO idle_timeout
   with Unix.Unix_error _ -> ());
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | raw ->
      let session, r, json = handle_request store !session_ref raw in
      session_ref := session;
      (try
         if json then send_json oc ~ok:r.ok ~extra:r.extra r.output
         else send_text oc ~ok:r.ok r.output
       with Sys_error _ -> ());
      if r.stop then stop_ref := true else if not r.bye then loop ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    loop

let entry_of_event = function
  | Session.Updated ops -> Dbio.Wal.Batch ops
  | Session.Undone -> Dbio.Wal.Undo
  | Session.Preferred p -> Dbio.Wal.Prefer p

let bind_socket dir =
  let path = socket_path dir in
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    if Sys.file_exists path then Unix.unlink path;
    Unix.bind sock (Unix.ADDR_UNIX path);
    Unix.listen sock 16
  with
  | () -> Ok sock
  | exception Unix.Unix_error (err, fn, _) ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "%s: %s: %s" path fn (Unix.error_message err))

let serve dir =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* stale socket file vs live server: only a live one answers ping *)
  if Sys.file_exists (socket_path dir) && ping dir then
    Error (Printf.sprintf "%s: a server is already running" dir)
  else
    match Dbio.Store.open_ dir with
    | Error e -> Error e
    | Ok store -> (
      match bind_socket dir with
      | Error e ->
        Dbio.Store.close store;
        Error e
      | Ok sock ->
        write_pid_file dir;
        let session =
          Session.set_observer
            (Session.of_spec ~engine:(Dbio.Store.engine store)
               (Dbio.Store.spec store))
            (fun ev -> Dbio.Store.log store (entry_of_event ev))
        in
        let session_ref = ref session in
        let stop_ref = ref false in
        while not !stop_ref do
          match Unix.accept sock with
          | fd, _ -> serve_connection store session_ref stop_ref fd
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done;
        (try Unix.close sock with Unix.Unix_error _ -> ());
        remove_if_exists (socket_path dir);
        remove_if_exists (pid_path dir);
        Dbio.Store.close store;
        Ok ())
