module IF = Dbio.Instance_format

let socket_path dir = Filename.concat dir "serve.sock"
let pid_path dir = Filename.concat dir "serve.pid"
let log_path dir = Filename.concat dir "serve.log"
let slow_log_path dir = Filename.concat dir "slow.jsonl"

(* --- configuration ------------------------------------------------------ *)

type config = {
  request_timeout : float;
      (* seconds before a quiet accepted connection is dropped *)
  slow_query_ms : float option;
      (* capture queries slower than this to the slow-query log *)
  slow_log : string option;
      (* override the log path; default [DIR/slow.jsonl] *)
}

let env_timeout_var = "PREFDB_REQUEST_TIMEOUT"

let parse_timeout s =
  match float_of_string_opt (String.trim s) with
  | Some t when Float.is_finite t && t > 0.0 -> Some t
  | Some _ | None -> None

(* An empty value reads as unset: the only way to "unset" a variable
   through [Unix.putenv] is to set it to "". *)
let env_timeout_value () =
  match Sys.getenv_opt env_timeout_var with
  | Some s when String.trim s <> "" -> Some s
  | _ -> None

let env_request_timeout () =
  Option.bind (env_timeout_value ()) parse_timeout

let env_request_timeout_error () =
  match env_timeout_value () with
  | None -> None
  | Some s -> (
    match parse_timeout s with
    | Some _ -> None
    | None -> (
      match float_of_string_opt (String.trim s) with
      | Some _ ->
        Some
          (Printf.sprintf
             "%s=%s: the request timeout must be a positive number of seconds"
             env_timeout_var (String.trim s))
      | None ->
        Some (Printf.sprintf "%s=%S is not a number" env_timeout_var s)))

let default_config () =
  {
    request_timeout = Option.value (env_request_timeout ()) ~default:10.0;
    slow_query_ms = None;
    slow_log = None;
  }

(* --- serve metrics ------------------------------------------------------ *)

let m_connections =
  Obs.Registry.counter ~help:"Connections accepted by the serve loop"
    "prefdb_serve_connections_total"

let m_conn_timeouts =
  Obs.Registry.counter
    ~help:"Connections dropped after a read or write timed out"
    "prefdb_serve_connection_timeouts_total"

let m_conn_errors =
  Obs.Registry.counter
    ~help:"Connections that failed mid-request (EPIPE, ECONNRESET, ...)"
    "prefdb_serve_connection_errors_total"

let m_bytes_in =
  Obs.Registry.counter ~help:"Request bytes read off accepted sockets"
    "prefdb_serve_bytes_in_total"

let m_bytes_out =
  Obs.Registry.counter ~help:"Response bytes written to accepted sockets"
    "prefdb_serve_bytes_out_total"

let m_in_flight =
  Obs.Registry.gauge ~help:"Requests currently being handled"
    "prefdb_serve_in_flight_requests"

let m_slow_queries =
  Obs.Registry.counter ~help:"Queries captured by the slow-query log"
    "prefdb_serve_slow_queries_total"

(* Request counters are labelled by command word; unknown words
   collapse into "other" so a misbehaving client cannot grow the label
   set without bound. *)
let known_cmds =
  [
    "ping"; "shutdown"; "quit"; "exit"; "load"; "snapshot"; "metrics";
    "status"; "help"; "family"; "jobs"; "info"; "repairs"; "count"; "stats";
    "facts"; "clean"; "trace"; "query"; "qtrace"; "profile"; "explain";
    "plan"; "insert"; "delete"; "undo"; "aggregate"; "prefer"; "save";
    "denials"; "hyper";
  ]

let cmd_label cmd = if List.mem cmd known_cmds then cmd else "other"

let m_requests label =
  Obs.Registry.counter
    ~labels:[ ("cmd", label) ]
    ~help:"Requests handled, by command" "prefdb_serve_requests_total"

let m_request_errors label =
  Obs.Registry.counter
    ~labels:[ ("cmd", label) ]
    ~help:"Requests answered with an error, by command"
    "prefdb_serve_request_errors_total"

let m_request_seconds label =
  Obs.Registry.histogram
    ~labels:[ ("cmd", label) ]
    ~help:"Request handling latency, by command"
    "prefdb_serve_request_seconds"

(* Server-level totals for the [status] command; the serve loop is
   single-threaded, so plain refs suffice. *)
let server_started = ref (Unix.gettimeofday ())
let requests_served = ref 0
let request_errors = ref 0
let slow_logged = ref 0

let () =
  Obs.Registry.gauge_fn ~help:"Seconds since the serve loop started"
    "prefdb_serve_uptime_seconds" (fun () ->
      Unix.gettimeofday () -. !server_started)

(* --- wire framing ------------------------------------------------------- *)

(* Text responses are byte-count framed — outputs are multi-line, so a
   terminator would be ambiguous. JSON responses are one object per
   line, self-delimiting. *)
let text_frame ~ok out =
  Printf.sprintf "%s %d\n%s" (if ok then "ok" else "error")
    (String.length out) out

let json_frame ~ok ?(extra = []) out =
  Obs.Json.to_string
    (Obs.Json.Obj
       ([ ("ok", Obs.Json.Bool ok); ("output", Obs.Json.Str out) ] @ extra))
  ^ "\n"

let read_text_response ic =
  let header = input_line ic in
  match String.index_opt header ' ' with
  | None -> Error (Printf.sprintf "malformed response header %S" header)
  | Some sp -> (
    let status = String.sub header 0 sp in
    let len = String.sub header (sp + 1) (String.length header - sp - 1) in
    match (status, int_of_string_opt len) with
    | ("ok" | "error"), Some n when n >= 0 ->
      let body = really_input_string ic n in
      if status = "ok" then Ok body else Error body
    | _ -> Error (Printf.sprintf "malformed response header %S" header))

(* --- client side -------------------------------------------------------- *)

let with_connection dir k =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX (socket_path dir)) with
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "%s: cannot connect: %s" (socket_path dir)
         (Unix.error_message err))
  | () ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        match k ic oc with
        | v -> v
        | exception End_of_file -> Error "connection closed by server"
        | exception Sys_error m -> Error m)

let request dir cmd =
  with_connection dir (fun ic oc ->
      output_string oc cmd;
      output_char oc '\n';
      flush oc;
      read_text_response ic)

let request_json dir cmd =
  with_connection dir (fun ic oc ->
      output_string oc
        (Obs.Json.to_string (Obs.Json.Obj [ ("cmd", Obs.Json.Str cmd) ]));
      output_char oc '\n';
      flush oc;
      Obs.Json.of_string (input_line ic))

let ping dir = match request dir "ping" with Ok "pong" -> true | _ -> false

(* --- server-side socket I/O --------------------------------------------- *)

(* Accepted connections are driven through raw [Unix.read]/[write]
   rather than channels: the errno classification below is the whole
   point — a timed-out read (EAGAIN under SO_RCVTIMEO) and a client
   that vanished mid-response (EPIPE/ECONNRESET) are different
   conditions with different counters, and both must leave the accept
   loop alive.  Channels collapse all of it into [Sys_error]. *)

type io_failure = Timeout | Disconnected | Failed of string

let classify_errno = function
  | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT -> Timeout
  | Unix.EPIPE | Unix.ECONNRESET | Unix.ESHUTDOWN -> Disconnected
  | err -> Failed (Unix.error_message err)

let count_io_failure = function
  | Timeout -> Obs.Metric.incr m_conn_timeouts
  | Disconnected | Failed _ -> Obs.Metric.incr m_conn_errors

type conn = {
  fd : Unix.file_descr;
  rbuf : Bytes.t;
  mutable rpos : int;  (* unconsumed bytes live at [rpos, rlen) *)
  mutable rlen : int;
}

let conn_of_fd fd = { fd; rbuf = Bytes.create 4096; rpos = 0; rlen = 0 }

let find_newline buf pos stop =
  let rec go i =
    if i >= stop then None else if Bytes.get buf i = '\n' then Some i else go (i + 1)
  in
  go pos

(* One request line, newline-stripped.  [`Line] / [`Eof] (clean close
   at a line boundary) / [`Fail] (timeout or error; any partial line is
   abandoned with the connection). *)
let read_line conn =
  let acc = Buffer.create 128 in
  let rec go () =
    if conn.rpos >= conn.rlen then refill ()
    else
      match find_newline conn.rbuf conn.rpos conn.rlen with
      | Some i ->
        Buffer.add_subbytes acc conn.rbuf conn.rpos (i - conn.rpos);
        conn.rpos <- i + 1;
        `Line (Buffer.contents acc)
      | None ->
        Buffer.add_subbytes acc conn.rbuf conn.rpos (conn.rlen - conn.rpos);
        conn.rpos <- conn.rlen;
        refill ()
  and refill () =
    match Unix.read conn.fd conn.rbuf 0 (Bytes.length conn.rbuf) with
    | 0 ->
      (* a trailing unterminated line still counts, matching what the
         channel layer's [input_line] accepted before *)
      if Buffer.length acc = 0 then `Eof else `Line (Buffer.contents acc)
    | n ->
      Obs.Metric.incr ~by:n m_bytes_in;
      conn.rpos <- 0;
      conn.rlen <- n;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill ()
    | exception Unix.Unix_error (err, _, _) -> `Fail (classify_errno err)
  in
  go ()

let write_all fd s =
  let n = String.length s in
  let rec go written =
    if written >= n then Ok ()
    else
      match Unix.single_write_substring fd s written (n - written) with
      | k ->
        Obs.Metric.incr ~by:k m_bytes_out;
        go (written + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go written
      | exception Unix.Unix_error (err, _, _) -> Error (classify_errno err)
  in
  go 0

(* --- request handling --------------------------------------------------- *)

type reply = {
  ok : bool;
  output : string;
  stop : bool;
  bye : bool;
  extra : (string * Obs.Json.t) list;
      (* structured fields attached to the JSON framing only (the text
         framing already carries the same content rendered) *)
}

let reply ?(stop = false) ?(bye = false) ?(extra = []) ok output =
  { ok; output; stop; bye; extra }

let first_word line =
  let line = String.trim line in
  match String.index_opt line ' ' with
  | None -> String.lowercase_ascii line
  | Some i -> String.lowercase_ascii (String.sub line 0 i)

let rest_of line =
  let line = String.trim line in
  match String.index_opt line ' ' with
  | None -> ""
  | Some i -> String.trim (String.sub line i (String.length line - i))

let server_status store =
  let uptime = Unix.gettimeofday () -. !server_started in
  ( Printf.sprintf
      "up %.1fs\n\
       generation: %d\n\
       wal records: %d\n\
       requests: %d (%d error(s))\n\
       slow queries logged: %d"
      uptime
      (Dbio.Store.generation store)
      (Dbio.Store.wal_records store)
      !requests_served !request_errors !slow_logged,
    Obs.Json.Obj
      [
        ("uptime_s", Obs.Json.Float uptime);
        ("generation", Obs.Json.Int (Dbio.Store.generation store));
        ("wal_records", Obs.Json.Int (Dbio.Store.wal_records store));
        ("requests", Obs.Json.Int !requests_served);
        ("request_errors", Obs.Json.Int !request_errors);
        ("slow_queries", Obs.Json.Int !slow_logged);
      ] )

(* The server-level commands sit outside the session language: liveness,
   checkpointing, lifecycle, metrics and server status are the store's
   business, not the interpreter's. [load] is rejected — in serve mode
   the store owns the instance, and swapping it out from under the log
   would desynchronize snapshot and journal. *)
let handle store session line =
  match first_word line with
  | "ping" -> (session, reply true "pong")
  | "shutdown" -> (session, reply true "shutting down" ~stop:true)
  | "quit" | "exit" -> (session, reply true "bye" ~bye:true)
  | "metrics" ->
    (* text framing carries the Prometheus exposition; the JSON framing
       additionally gets the structured form *)
    ( session,
      reply true
        (Obs.Registry.render ())
        ~extra:[ ("metrics", Obs.Registry.to_json ()) ] )
  | "status" when rest_of line = "" ->
    let text, json = server_status store in
    (session, reply true text ~extra:[ ("status", json) ])
  | "load" ->
    ( session,
      reply false
        "error: load is disabled in serve mode (the store owns the instance)"
    )
  | "snapshot" -> (
    match Session.loaded session with
    | None -> (session, reply false "error: no instance loaded")
    | Some spec -> (
      match Dbio.Store.checkpoint store spec with
      | Ok () ->
        (* a recovered engine's history reaches back only to the
           snapshot; drop the live history too so both sides agree the
           checkpoint is the undo horizon *)
        Session.drop_undo_history session;
        ( session,
          reply true
            (Printf.sprintf
               "snapshot written to %s (wal truncated; undo history reset)"
               (Dbio.Store.snapshot_path (Dbio.Store.dir store))) )
      | Error e -> (session, reply false ("error: " ^ e))))
  | _ ->
    let session, out = Session.exec session line in
    let ok = not (Session.is_error_output out) in
    (* [plan]/[explain] responses also carry the physical plan as a
       structured "plan" field, so JSON clients need not parse the
       rendered tree *)
    let extra =
      match first_word line with
      | ("plan" | "explain") when ok -> (
        match Session.plan_json session (rest_of line) with
        | Ok j -> [ ("plan", j) ]
        | Error _ -> [])
      | _ -> []
    in
    (session, reply ~extra ok out)

(* --- slow-query capture ------------------------------------------------- *)

(* Commands whose slow executions are worth a plan post-mortem. *)
let slow_eligible cmd =
  List.mem cmd [ "query"; "qtrace"; "explain"; "plan"; "count"; "aggregate" ]

(* Run [f] with a memory sink teed onto whatever sink is live, so the
   capture works whether or not the server records a trace. *)
let with_span_capture f =
  let buf = Obs.Sink.Memory.create () in
  let prev = Obs.Span.sink () in
  let sink =
    match prev with
    | None -> Obs.Sink.Memory.sink buf
    | Some s -> Obs.Sink.tee s (Obs.Sink.Memory.sink buf)
  in
  Obs.Span.set_sink (Some sink);
  let r =
    Fun.protect ~finally:(fun () -> Obs.Span.set_sink prev) f
  in
  (r, Obs.Sink.Memory.events buf)

let first_line s =
  match String.index_opt s '\n' with
  | None -> s
  | Some i -> String.sub s 0 i

let log_slow config ~dir ~session ~cmd ~query ~wall ~events (r : reply) =
  let phases = Obs.Profile.flat (Obs.Profile.tree events) in
  (* one extra planner run, executed over the dirty relation — cheap
     next to the repair-space work that made the query slow, and it
     carries the est/actual cardinalities the post-mortem needs *)
  let explain =
    match Session.explain_report session query with
    | Ok (text, json) -> Some (text, json)
    | Error _ -> None
  in
  let record =
    {
      Slowlog.ts = Unix.gettimeofday ();
      cmd;
      query;
      verdict = first_line r.output;
      wall_ms = wall *. 1000.0;
      phases;
      explain;
    }
  in
  let path =
    match config.slow_log with Some p -> p | None -> slow_log_path dir
  in
  match Slowlog.append ~path record with
  | Ok () ->
    incr slow_logged;
    Obs.Metric.incr m_slow_queries
  | Error _ -> ()

let handle_request config ~dir store session raw =
  let json = String.length raw > 0 && raw.[0] = '{' in
  let line =
    if not json then Ok raw
    else
      match Obs.Json.of_string raw with
      | Error e -> Error (Printf.sprintf "error: bad request json: %s" e)
      | Ok j -> (
        match Obs.Json.member "cmd" j with
        | Some (Obs.Json.Str cmd) -> Ok cmd
        | Some _ -> Error "error: \"cmd\" must be a string"
        | None -> Error "error: request object needs a \"cmd\" field")
  in
  match line with
  | Error msg -> (session, reply false msg, json)
  | Ok line ->
    let cmd = first_word line in
    let label = cmd_label cmd in
    let capture =
      match config.slow_query_ms with
      | Some _ -> slow_eligible cmd
      | None -> false
    in
    Obs.Metric.add_gauge m_in_flight 1.0;
    let t0 = Unix.gettimeofday () in
    let run () =
      Obs.Span.with_span "serve.request"
        ~args:[ ("cmd", Obs.Event.Str cmd) ]
        (fun () -> handle store session line)
    in
    let (session, r), events =
      Fun.protect
        ~finally:(fun () -> Obs.Metric.add_gauge m_in_flight (-1.0))
        (fun () -> if capture then with_span_capture run else (run (), []))
    in
    let wall = Unix.gettimeofday () -. t0 in
    incr requests_served;
    if not r.ok then incr request_errors;
    Obs.Metric.incr (m_requests label);
    if not r.ok then Obs.Metric.incr (m_request_errors label);
    Obs.Metric.observe (m_request_seconds label) wall;
    (match config.slow_query_ms with
    | Some thr when capture && (wall *. 1000.0) +. 1e-9 >= thr ->
      log_slow config ~dir ~session ~cmd ~query:(rest_of line) ~wall ~events r
    | _ -> ());
    (session, r, json)

(* --- the serve loop ----------------------------------------------------- *)

let write_pid_file dir =
  Out_channel.with_open_text (pid_path dir) (fun oc ->
      Printf.fprintf oc "%d\n" (Unix.getpid ()))

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()

(* Connections are served one at a time, so a client that connects and
   goes quiet must not wedge the loop: every read and write on the
   accepted socket carries [config.request_timeout] seconds, after
   which the connection is dropped (counted as a timeout) and the next
   client — including a [shutdown] — is accepted.  A client that
   disconnects mid-response (EPIPE/ECONNRESET) likewise only kills its
   own connection.  Well-behaved clients open a connection per request
   and are far inside the budget. *)
let serve_connection config ~dir store session_ref stop_ref fd =
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO config.request_timeout;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO config.request_timeout
   with Unix.Unix_error _ -> ());
  Obs.Metric.incr m_connections;
  let conn = conn_of_fd fd in
  let rec loop () =
    match read_line conn with
    | `Eof -> ()
    | `Fail failure -> count_io_failure failure
    | `Line raw ->
      let session, r, json =
        handle_request config ~dir store !session_ref raw
      in
      session_ref := session;
      let frame =
        if json then json_frame ~ok:r.ok ~extra:r.extra r.output
        else text_frame ~ok:r.ok r.output
      in
      (match write_all fd frame with
      | Ok () -> if r.stop then stop_ref := true else if not r.bye then loop ()
      | Error failure ->
        count_io_failure failure;
        (* a response that could not be delivered must still honor a
           shutdown — the client's intent reached us *)
        if r.stop then stop_ref := true)
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    loop

let entry_of_event = function
  | Session.Updated ops -> Dbio.Wal.Batch ops
  | Session.Undone -> Dbio.Wal.Undo
  | Session.Preferred p -> Dbio.Wal.Prefer p

let bind_socket dir =
  let path = socket_path dir in
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    if Sys.file_exists path then Unix.unlink path;
    Unix.bind sock (Unix.ADDR_UNIX path);
    Unix.listen sock 16
  with
  | () -> Ok sock
  | exception Unix.Unix_error (err, fn, _) ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "%s: %s: %s" path fn (Unix.error_message err))

let serve ?config dir =
  let config = match config with Some c -> c | None -> default_config () in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* stale socket file vs live server: only a live one answers ping *)
  if Sys.file_exists (socket_path dir) && ping dir then
    Error (Printf.sprintf "%s: a server is already running" dir)
  else
    match Dbio.Store.open_ dir with
    | Error e -> Error e
    | Ok store -> (
      match bind_socket dir with
      | Error e ->
        Dbio.Store.close store;
        Error e
      | Ok sock ->
        write_pid_file dir;
        server_started := Unix.gettimeofday ();
        requests_served := 0;
        request_errors := 0;
        slow_logged := 0;
        let session =
          Session.set_observer
            (Session.of_spec ~engine:(Dbio.Store.engine store)
               (Dbio.Store.spec store))
            (fun ev -> Dbio.Store.log store (entry_of_event ev))
        in
        let session_ref = ref session in
        let stop_ref = ref false in
        while not !stop_ref do
          match Unix.accept sock with
          | fd, _ -> serve_connection config ~dir store session_ref stop_ref fd
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done;
        (try Unix.close sock with Unix.Unix_error _ -> ());
        remove_if_exists (socket_path dir);
        remove_if_exists (pid_path dir);
        Dbio.Store.close store;
        Ok ())
