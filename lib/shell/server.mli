(** The serve loop: one warm session behind a unix socket.

    A long-running process owning a {!Dbio.Store} and one {!Session}
    whose engine stays warm across requests — repeated queries pay the
    conflict-graph build and component caches once, not per invocation.
    Clients connect to [serve.sock] in the store directory and speak
    the shell command language, one request per line, in either of two
    framings:

    {v
    -- text: the raw command line
    query Mgr('Mary', d, s)
    -- response: a status line with a byte count, then that many bytes
    ok 23
    c: certainty: certain

    -- json: a line starting with '{'
    {"cmd": "query Mgr('Mary', d, s)"}
    -- response: one JSON object per line
    {"ok": true, "output": "c: certainty: certain"}
    v}

    A connection may issue any number of requests; closing the socket
    ends it. Connections are served one at a time, so reads and writes
    on an accepted socket carry a timeout ({!config.request_timeout},
    default 10 seconds, [PREFDB_REQUEST_TIMEOUT] overrides) — a client
    that connects and goes quiet is dropped rather than blocking every
    other client (including a [shutdown]).  A client that disconnects
    mid-response only kills its own connection; timeouts and broken
    pipes are counted separately in the serve metrics.  Mutations
    ([insert]/[delete]/[undo]/[prefer]) are journaled to the store's
    write-ahead log — fsynced before the response is sent — so an
    acknowledged change survives [kill -9]; a mutation whose journal
    append fails is rolled back (or never applied) and reported as an
    error, keeping the served state replayable.

    Beyond the session language the server answers [ping] (liveness),
    [snapshot] (fold the log into a fresh snapshot and truncate it —
    after which the snapshot is the undo horizon: older mutations can
    no longer be undone, live or recovered), [metrics] (the process
    metrics — Prometheus text exposition over the text framing, with
    the structured form attached to the JSON framing as a ["metrics"]
    field), [status] with no arguments (uptime, generation, journal
    and request totals; [status VALUES] still reaches the session's
    tuple-status command) and [shutdown] (stop the loop). [load] is
    rejected — the store, not the client, owns the instance. Every
    request runs under a [serve.request] span and feeds the
    [prefdb_serve_*] metrics.

    With {!config.slow_query_ms} set, any query-shaped request
    ([query]/[qtrace]/[explain]/[plan]/[count]/[aggregate]) whose wall
    time crosses the threshold appends one {!Slowlog} record — query
    text, verdict, per-phase spans and the planner report with
    estimated vs. actual cardinalities — to [slow.jsonl] in the store
    directory (or {!config.slow_log}).

    Lifecycle files, all in the store directory: [serve.sock] (the
    listening socket), [serve.pid] (the server's pid, written on bind,
    removed on graceful shutdown), [serve.log] (stdout/stderr of a
    daemonized server — written by [prefdb start], not by this
    module). *)

val socket_path : string -> string
val pid_path : string -> string
val log_path : string -> string

val slow_log_path : string -> string
(** [DIR/slow.jsonl], the default slow-query log location. *)

type config = {
  request_timeout : float;
      (** seconds before a quiet accepted connection is dropped *)
  slow_query_ms : float option;
      (** capture queries slower than this many milliseconds *)
  slow_log : string option;
      (** slow-query log path; default [DIR/slow.jsonl] *)
}

val default_config : unit -> config
(** 10-second request timeout (or [PREFDB_REQUEST_TIMEOUT] when set
    and valid), no slow-query capture. *)

val env_request_timeout : unit -> float option
(** A valid [PREFDB_REQUEST_TIMEOUT] (a positive, finite number of
    seconds), if set. *)

val env_request_timeout_error : unit -> string option
(** A usage-error message when [PREFDB_REQUEST_TIMEOUT] is set but
    invalid — the CLI reports it and exits 124, as with
    [PREFDB_JOBS]. *)

val serve : ?config:config -> string -> (unit, string) result
(** [serve dir] opens the store in [dir] (replaying its log), binds
    the socket and blocks serving requests until a [shutdown] request
    arrives. Returns an error when the store cannot be opened or the
    socket cannot be bound (e.g. another server is live — {!ping}
    distinguishes a live server from a stale socket file). *)

(** {2 Client side} *)

val request : string -> string -> (string, string) result
(** [request dir cmd] connects, sends one text-framed command and
    returns its output ([Error] carries a server-reported error output
    or a connection failure). *)

val request_json : string -> string -> (Obs.Json.t, string) result
(** Like {!request} but over the JSON framing; returns the whole
    response object. *)

val ping : string -> bool
(** Whether a live server answers on [dir]'s socket. *)
