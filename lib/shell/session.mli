(** The interactive session: a pure command interpreter.

    Drives the whole library from one-line commands, holding the loaded
    instance and the selected repair family as state. The interpreter is
    pure — [exec] maps a state and a command line to a new state and the
    text to display — so the test suite exercises it without a terminal;
    [bin/prefdb shell] wires it to stdin.

    Commands:
    {v
    load FILE            load an instance file
    family rep|l|s|g|c   select the preferred-repair family
    info                 schema, constraints, conflicts
    repairs [N]          enumerate (at most N) preferred repairs
    count                count preferred repairs without enumerating
    stats                inconsistency summary
    facts                certain / disputed / excluded tuples
    clean                run Algorithm 1
    trace                run Algorithm 1 step by step
    query Q              preferred consistent answer to a closed query,
                         certain bindings of an open one (answered
                         through the component decomposition)
    qtrace Q             answer plus the decomposition's work report:
                         per-component repair counts, cache traffic,
                         combinations streamed, early exits
    explain Q            answer with witness repairs, prefixed with the
                         physical plan the per-repair checks execute
    plan Q               the cost-based physical plan for Q over the
                         current instance: chosen join order, access
                         paths (index/range/merge scans), estimated
                         vs. actual cardinalities — or the fallback
                         reason when Q is outside the compilable
                         fragment
    status VALUES        a tuple's conflicts and fate
    insert VALUES        add a tuple through the incremental engine:
                         only the components the insertion touches are
                         recomputed, cached repair lists of untouched
                         components stay live
    delete VALUES        remove a tuple, incrementally likewise
    undo                 revert the most recent insert/delete batch
    aggregate SPEC       count | sum:A | min:A | max:A
    prefer DECL          add a preference (file-format syntax; rebuilds
                         the incremental engine — a global preference
                         change invalidates every component)
    save FILE            write the instance and preferences back out
    metrics              process metrics in Prometheus text format
    help                 this text
    v} *)

type state

val initial : state

val of_spec : ?engine:Core.Delta.t -> Dbio.Instance_format.spec -> state
(** A session holding an already-loaded spec — the serve loop's entry
    point, where the durable store (not a [load] command) owns the
    instance. [engine] supplies a warm incremental engine (e.g. the one
    {!Dbio.Store.open_} recovered); without it one is built from the
    spec. *)

val family : state -> Core.Family.name

val loaded : state -> Dbio.Instance_format.spec option

(** {2 Mutation observation}

    The durability gate: the serve loop appends one write-ahead-log
    record per mutation through the observer, and a mutation commits to
    the session only if the observer succeeds. [insert]/[delete] apply
    to the engine first and are {e rolled back} when journaling fails;
    [undo] and [prefer] journal {e before} touching the session (an
    undo's replayability is the journal's call — the store refuses one
    that would revert past the last snapshot — and a validated
    preference always re-applies). Either way, a failed observer leaves
    the served state exactly where the journal can reproduce it, and
    the command reports a [not journaled] error. *)

type event =
  | Updated of Core.Delta.op list
      (** one [insert]/[delete] batch, in engine order *)
  | Undone  (** one [undo] *)
  | Preferred of Dbio.Instance_format.pref  (** one [prefer] *)

val set_observer : state -> (event -> (unit, string) result) -> state

val drop_undo_history : state -> unit
(** Empty the engine's undo history in place (no-op without an engine).
    The serve loop calls this after a successful store checkpoint so
    the live session agrees with a recovered one that the snapshot is
    the undo horizon ({!Dbio.Store.log} would reject the older undos
    anyway; this makes [undo] report "nothing to undo" up front). *)

val plan_json : state -> string -> (Obs.Json.t, string) result
(** The [plan] command's report as JSON (mode, operator tree with
    estimates and actuals, result) for the serve protocol's structured
    framing. [Error] on parse failure or when no instance is loaded. *)

val explain_report : state -> string -> (string * Obs.Json.t, string) result
(** One planner run rendered both ways: the [plan] command's text and
    its JSON form, from the same execution — the slow-query log embeds
    both without running the plan twice. *)

val exec : state -> string -> state * string
(** Execute one command line. Unknown commands and errors produce an
    explanatory message and leave the state unchanged. The [quit]/[exit]
    commands are the driver's business, not the interpreter's. *)

val is_error_output : string -> bool
(** Whether [exec]'s output reports an error (parse failure, unknown
    command, missing instance, rejected update). Non-interactive drivers
    use this to exit non-zero when a scripted command fails. *)
