(** The slow-query log: one JSONL record per over-threshold query.

    When serving (or the CLI) runs with a slow-query threshold, any
    query whose wall time crosses it appends one self-contained JSON
    object to the log — the operator's path from "p99 spiked" to "this
    plan misestimated this join" without re-running anything:

    {v
    {"ts": ..., "cmd": "query", "query": "...", "verdict": "...",
     "wall_ms": ..., "phases": [{"name": ..., "seconds": ..., "count": ...}],
     "explain": { planner report with est/actual cardinalities },
     "explain_text": "plan: ..."}
    v} *)

type record = {
  ts : float;  (** unix time the query finished *)
  cmd : string;  (** the command word: query, explain, plan, ... *)
  query : string;  (** the query text as received *)
  verdict : string;  (** first line of the command's output *)
  wall_ms : float;
  phases : (string * float * int) list;
      (** per-span inclusive seconds and counts, from {!Obs.Profile.flat} *)
  explain : (string * Obs.Json.t) option;
      (** the planner report (text and JSON forms), when one could be
          produced for this query *)
}

val to_json : record -> Obs.Json.t

val append : path:string -> record -> (unit, string) result
(** Append one record line, creating the file if needed. *)

val validate_line : string -> (unit, string) result
(** Check one log line: parses as an object, carries the required
    fields with the right types, finite numbers. *)

val validate_file : string -> (int, string) result
(** Validate every line; returns the record count. *)
