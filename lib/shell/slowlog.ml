type record = {
  ts : float;
  cmd : string;
  query : string;
  verdict : string;
  wall_ms : float;
  phases : (string * float * int) list;
  explain : (string * Obs.Json.t) option;
}

let to_json r =
  let open Obs.Json in
  Obj
    ([
       ("ts", Float r.ts);
       ("cmd", Str r.cmd);
       ("query", Str r.query);
       ("verdict", Str r.verdict);
       ("wall_ms", Float r.wall_ms);
       ( "phases",
         List
           (Stdlib.List.map
              (fun (name, seconds, count) ->
                Obj
                  [
                    ("name", Str name);
                    ("seconds", Float seconds);
                    ("count", Int count);
                  ])
              r.phases) );
     ]
    @
    match r.explain with
    | None -> []
    | Some (text, json) -> [ ("explain", json); ("explain_text", Str text) ])

let append ~path r =
  match
    let fd =
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let line = Obs.Json.to_string (to_json r) ^ "\n" in
        let n = String.length line in
        let written = ref 0 in
        while !written < n do
          written :=
            !written + Unix.single_write_substring fd line !written (n - !written)
        done)
  with
  | () -> Ok ()
  | exception Unix.Unix_error (err, fn, _) ->
    Error (Printf.sprintf "%s: %s: %s" path fn (Unix.error_message err))

(* --- validation --------------------------------------------------------- *)

let num_field name j =
  match Obs.Json.member name j with
  | Some (Obs.Json.Float f) ->
    if Float.is_finite f then Ok f else Error (name ^ " is not finite")
  | Some (Obs.Json.Int i) -> Ok (Float.of_int i)
  | Some _ -> Error (name ^ " is not a number")
  | None -> Error ("missing field " ^ name)

let str_field name j =
  match Obs.Json.member name j with
  | Some (Obs.Json.Str s) -> Ok s
  | Some _ -> Error (name ^ " is not a string")
  | None -> Error ("missing field " ^ name)

let ( let* ) = Result.bind

let validate_line line =
  let* j = Obs.Json.of_string line in
  let* _ = num_field "ts" j in
  let* _ = str_field "cmd" j in
  let* _ = str_field "query" j in
  let* _ = str_field "verdict" j in
  let* wall = num_field "wall_ms" j in
  let* () = if wall >= 0.0 then Ok () else Error "negative wall_ms" in
  let* () =
    match Obs.Json.member "phases" j with
    | None -> Error "missing field phases"
    | Some (Obs.Json.List phases) ->
      List.fold_left
        (fun acc p ->
          let* () = acc in
          let* _ = str_field "name" p in
          let* _ = num_field "seconds" p in
          let* _ = num_field "count" p in
          Ok ())
        (Ok ()) phases
    | Some _ -> Error "phases is not a list"
  in
  (* the explain pair is optional, but must come whole *)
  match (Obs.Json.member "explain" j, Obs.Json.member "explain_text" j) with
  | None, None -> Ok ()
  | Some (Obs.Json.Obj _), Some (Obs.Json.Str _) -> Ok ()
  | _ -> Error "explain/explain_text must be an object/string pair"

let validate_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | data ->
    let lines =
      List.filter (fun l -> l <> "") (String.split_on_char '\n' data)
    in
    let rec check n = function
      | [] -> Ok n
      | line :: rest -> (
        match validate_line line with
        | Ok () -> check (n + 1) rest
        | Error e -> Error (Printf.sprintf "record %d: %s" (n + 1) e))
    in
    check 0 lines
