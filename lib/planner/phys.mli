(** Physical query plans.

    The executable operator trees emitted by {!Compile}: postings-probe
    and range scans over base relations, hash and sorted-posting merge
    joins, filters, projections, anti-joins (generalized difference for
    negation and bounded universals) and unions (disjunction), plus a
    boolean combinator layer for closed queries. Nodes carry estimated
    cardinalities from plan time and record actual cardinalities on
    execution — EXPLAIN renders both. Results are cached per node, so a
    subtree shared between disjuncts runs once. *)

open Relational

type range = { rlo : (int * bool) option; rhi : (int * bool) option }
(** Packed bound + inclusive flag per side; [None] = unbounded. *)

type access = {
  probes : (int * Value.t) list;  (** column = constant, a postings probe *)
  range : (int * range) option;  (** one range-scanned int column *)
  residual : Algebra.selection list;  (** checked per surviving tuple *)
}

type node = {
  nid : int;
  tys : Schema.ty array;  (** output column types *)
  mutable est : float;  (** estimated output cardinality *)
  mutable dist : float array;  (** estimated distinct values per column *)
  mutable actual : int;  (** actual output cardinality; -1 = not executed *)
  mutable cached : Relation.t option;
  shape : shape;
}

and shape =
  | Scan of { sname : string; aidx : int; srel : Relation.t; access : access }
      (** [aidx] is the source atom's position in the query, for EXPLAIN *)
  | Hash_join of {
      pairs : (int * int) list;
      left : node;
      right : node;
      build_left : bool;
    }  (** output = left columns then right columns, whatever the build side *)
  | Merge_join of { lcol : int; rcol : int; left : node; right : node }
      (** lockstep walk of both sides' sorted postings on the join column *)
  | Filter of Algebra.selection * node
  | Project of int list * node
  | Diff of node * node  (** anti-join: left rows absent from right *)
  | Union of node list
  | Empty

type bnode = { mutable bval : bool option; bshape : bshape }

and bshape =
  | B_const of bool
  | B_not of bnode
  | B_and of bnode list
  | B_or of bnode list
  | B_block of node  (** true iff the block produces at least one row *)

type plan = Rows of { free : string list; root : node } | Bool of bnode
(** Open queries produce [Rows] (free variables in the projection order,
    sorted, matching {!Query.Eval.answers}); closed queries produce
    [Bool]. *)

val node : Schema.ty array -> shape -> node
(** Fresh node with unknown estimates, unexecuted. *)

val exec : node -> Relation.t
(** Execute (or return the cached result), recording actual
    cardinalities down the tree. *)

val run_bool : bnode -> bool
(** Short-circuit evaluation; each visited block records its verdict and
    cardinalities for EXPLAIN. *)

val pp : Format.formatter -> node -> unit
val pp_plan : Format.formatter -> plan -> unit
val pp_access : Format.formatter -> access -> unit

val to_json : node -> Obs.Json.t
val plan_to_json : plan -> Obs.Json.t
