open Relational
open Query

(* The planning query engine: cost-based compiler with evaluator
   fallback, a drop-in replacement for [Query.Engine] (which keeps the
   legacy syntactic planner and serves as equivalence oracle). The
   [holds]/[answers] pair wraps planning and execution in spans for
   per-phase breakdowns; the [_relation] pair is the per-repair hot
   path and stays span-free. *)

let run_plan = function
  | Phys.Bool b -> ([], if Phys.run_bool b then [ [] ] else [])
  | Phys.Rows { free; root } ->
    ( free,
      List.map Tuple.values (Relation.tuples (Phys.exec root)) )

let holds ?stats db q =
  match Compile.compile ?stats db q with
  | Error reason ->
    Metrics.count_fallback reason;
    Eval.holds db q
  | Ok (Phys.Bool b) -> Phys.run_bool b
  | Ok (Phys.Rows _) ->
    (* open query: raise exactly as the evaluator does *)
    Eval.holds db q

let answers ?stats db q =
  match Compile.compile ?stats db q with
  | Error reason ->
    Metrics.count_fallback reason;
    Eval.answers db q
  | Ok plan -> run_plan plan

(* The spanned entry points also feed the metrics histograms: phase
   latencies around the same boundaries as the spans, and the q-error
   walk over whatever actual cardinalities the execution recorded. *)
let timed hist f =
  let t0 = Obs.Span.now () in
  let r = f () in
  Obs.Metric.observe hist (Obs.Span.now () -. t0);
  r

let holds_spanned ?stats db q =
  match
    timed Metrics.plan_seconds @@ fun () ->
    Obs.Span.with_span "planner.plan" (fun () -> Compile.compile ?stats db q)
  with
  | Error reason ->
    Metrics.count_fallback reason;
    Eval.holds db q
  | Ok (Phys.Bool b as plan) ->
    let r =
      timed Metrics.execute_seconds @@ fun () ->
      Obs.Span.with_span "planner.execute" (fun () -> Phys.run_bool b)
    in
    Metrics.record_qerrors plan;
    r
  | Ok (Phys.Rows _) -> Eval.holds db q

let answers_spanned ?stats db q =
  match
    timed Metrics.plan_seconds @@ fun () ->
    Obs.Span.with_span "planner.plan" (fun () -> Compile.compile ?stats db q)
  with
  | Error reason ->
    Metrics.count_fallback reason;
    Eval.answers db q
  | Ok plan ->
    let r =
      timed Metrics.execute_seconds @@ fun () ->
      Obs.Span.with_span "planner.execute" (fun () -> run_plan plan)
    in
    Metrics.record_qerrors plan;
    r

let as_db r = Database.of_relations [ r ]
let holds_relation ?stats r q = holds ?stats (as_db r) q
let answers_relation ?stats r q = answers ?stats (as_db r) q
let planned ?stats db q = Compile.supported ?stats db q
