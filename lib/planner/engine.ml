open Relational
open Query

(* The planning query engine: cost-based compiler with evaluator
   fallback, a drop-in replacement for [Query.Engine] (which keeps the
   legacy syntactic planner and serves as equivalence oracle). The
   [holds]/[answers] pair wraps planning and execution in spans for
   per-phase breakdowns; the [_relation] pair is the per-repair hot
   path and stays span-free. *)

let run_plan = function
  | Phys.Bool b -> ([], if Phys.run_bool b then [ [] ] else [])
  | Phys.Rows { free; root } ->
    ( free,
      List.map Tuple.values (Relation.tuples (Phys.exec root)) )

let holds ?stats db q =
  match Compile.compile ?stats db q with
  | Error _ -> Eval.holds db q
  | Ok (Phys.Bool b) -> Phys.run_bool b
  | Ok (Phys.Rows _) ->
    (* open query: raise exactly as the evaluator does *)
    Eval.holds db q

let answers ?stats db q =
  match Compile.compile ?stats db q with
  | Error _ -> Eval.answers db q
  | Ok plan -> run_plan plan

let holds_spanned ?stats db q =
  match
    Obs.Span.with_span "planner.plan" (fun () -> Compile.compile ?stats db q)
  with
  | Error _ -> Eval.holds db q
  | Ok (Phys.Bool b) ->
    Obs.Span.with_span "planner.execute" (fun () -> Phys.run_bool b)
  | Ok (Phys.Rows _) -> Eval.holds db q

let answers_spanned ?stats db q =
  match
    Obs.Span.with_span "planner.plan" (fun () -> Compile.compile ?stats db q)
  with
  | Error _ -> Eval.answers db q
  | Ok plan -> Obs.Span.with_span "planner.execute" (fun () -> run_plan plan)

let as_db r = Database.of_relations [ r ]
let holds_relation ?stats r q = holds ?stats (as_db r) q
let answers_relation ?stats r q = answers ?stats (as_db r) q
let planned ?stats db q = Compile.supported ?stats db q
