(** The planning query engine: cost-based compiler with evaluator
    fallback.

    Drop-in replacement for {!Query.Engine}: queries inside the
    compilable fragment (see {!Compile}) run as physical plans; the rest
    run through the active-domain evaluator {!Query.Eval}. Both agree on
    the fragment (cross-checked by the test suite), so callers get one
    semantics and the best available speed.

    [?stats] supplies per-relation statistics by name (e.g. the durable
    store's incrementally maintained ones); omitted, cheap
    {!Stats.quick} statistics are derived on the fly. *)

open Relational
open Query

val holds : ?stats:(string -> Stats.t option) -> Database.t -> Ast.t -> bool
(** Closed queries; raises like {!Query.Eval.holds} on ill-formed input. *)

val answers :
  ?stats:(string -> Stats.t option) ->
  Database.t ->
  Ast.t ->
  string list * Value.t list list

val holds_spanned :
  ?stats:(string -> Stats.t option) -> Database.t -> Ast.t -> bool
(** As {!holds}, bracketing planning and execution in ["planner.plan"] /
    ["planner.execute"] spans — for the interactive surfaces and the
    bench harness; the un-spanned variants serve the per-repair hot
    loop. *)

val answers_spanned :
  ?stats:(string -> Stats.t option) ->
  Database.t ->
  Ast.t ->
  string list * Value.t list list

val holds_relation :
  ?stats:(string -> Stats.t option) -> Relation.t -> Ast.t -> bool

val answers_relation :
  ?stats:(string -> Stats.t option) ->
  Relation.t ->
  Ast.t ->
  string list * Value.t list list

val planned : ?stats:(string -> Stats.t option) -> Database.t -> Ast.t -> bool
(** Whether the query compiles to a physical plan (diagnostics). *)
