open Relational
open Query

(* EXPLAIN: compile, execute, and render the physical plan with
   estimated vs. actual cardinalities. One report type feeds all three
   surfaces — the shell's [plan]/[explain] commands, [prefdb explain]
   and the serve protocol's text and JSON forms. *)

type outcome =
  | Holds of bool
  | Answers of string list * Value.t list list

type t = {
  mode : [ `Planned of Phys.plan | `Fallback of string ];
  outcome : outcome;
}

let run ?stats db q =
  let t0 = Obs.Span.now () in
  match Compile.compile ?stats db q with
  | Error reason ->
    Metrics.count_fallback reason;
    let outcome =
      if Ast.is_closed q then Holds (Eval.holds db q)
      else
        let free, rows = Eval.answers db q in
        Answers (free, rows)
    in
    { mode = `Fallback reason; outcome }
  | Ok plan ->
    Obs.Metric.observe Metrics.plan_seconds (Obs.Span.now () -. t0);
    let t1 = Obs.Span.now () in
    let outcome =
      match plan with
      | Phys.Bool b -> Holds (Phys.run_bool b)
      | Phys.Rows { free; root } ->
        let rows = List.map Tuple.values (Relation.tuples (Phys.exec root)) in
        Answers (free, rows)
    in
    Obs.Metric.observe Metrics.execute_seconds (Obs.Span.now () -. t1);
    Metrics.record_qerrors plan;
    { mode = `Planned plan; outcome }

let pp_outcome ppf = function
  | Holds b -> Format.fprintf ppf "result: %s" (if b then "holds" else "fails")
  | Answers (free, rows) ->
    Format.fprintf ppf "result: %d answer row(s) over (%s)" (List.length rows)
      (String.concat ", " free)

let pp_plan_only ppf t =
  match t.mode with
  | `Planned plan ->
    Format.fprintf ppf "@[<v>plan:@,  @[<v>%a@]@]" Phys.pp_plan plan
  | `Fallback reason ->
    Format.fprintf ppf "plan: active-domain evaluation (fallback: %s)" reason

let pp ppf t =
  Format.fprintf ppf "%a@," pp_plan_only t;
  pp_outcome ppf t.outcome

let to_json t =
  let open Obs.Json in
  let mode, detail =
    match t.mode with
    | `Planned plan -> (Str "planned", [ ("plan", Phys.plan_to_json plan) ])
    | `Fallback reason -> (Str "fallback", [ ("reason", Str reason) ])
  in
  let outcome =
    match t.outcome with
    | Holds b -> [ ("holds", Bool b) ]
    | Answers (free, rows) ->
      [
        ("free", List (Stdlib.List.map (fun x -> Str x) free));
        ( "rows",
          List
            (Stdlib.List.map
               (fun row ->
                 List
                   (Stdlib.List.map
                      (fun v -> Str (Format.asprintf "%a" Value.pp v))
                      row))
               rows) );
      ]
  in
  Obj ((("mode", mode) :: detail) @ outcome)
