open Relational
open Query

(* EXPLAIN: compile, execute, and render the physical plan with
   estimated vs. actual cardinalities. One report type feeds all three
   surfaces — the shell's [plan]/[explain] commands, [prefdb explain]
   and the serve protocol's text and JSON forms. *)

type outcome =
  | Holds of bool
  | Answers of string list * Value.t list list

type t = {
  mode : [ `Planned of Phys.plan | `Fallback of string ];
  outcome : outcome;
}

let run ?stats db q =
  match Compile.compile ?stats db q with
  | Error reason ->
    let outcome =
      if Ast.is_closed q then Holds (Eval.holds db q)
      else
        let free, rows = Eval.answers db q in
        Answers (free, rows)
    in
    { mode = `Fallback reason; outcome }
  | Ok (Phys.Bool b as plan) ->
    { mode = `Planned plan; outcome = Holds (Phys.run_bool b) }
  | Ok (Phys.Rows { free; root } as plan) ->
    let rows = List.map Tuple.values (Relation.tuples (Phys.exec root)) in
    { mode = `Planned plan; outcome = Answers (free, rows) }

let pp_outcome ppf = function
  | Holds b -> Format.fprintf ppf "result: %s" (if b then "holds" else "fails")
  | Answers (free, rows) ->
    Format.fprintf ppf "result: %d answer row(s) over (%s)" (List.length rows)
      (String.concat ", " free)

let pp_plan_only ppf t =
  match t.mode with
  | `Planned plan ->
    Format.fprintf ppf "@[<v>plan:@,  @[<v>%a@]@]" Phys.pp_plan plan
  | `Fallback reason ->
    Format.fprintf ppf "plan: active-domain evaluation (fallback: %s)" reason

let pp ppf t =
  Format.fprintf ppf "%a@," pp_plan_only t;
  pp_outcome ppf t.outcome

let to_json t =
  let open Obs.Json in
  let mode, detail =
    match t.mode with
    | `Planned plan -> (Str "planned", [ ("plan", Phys.plan_to_json plan) ])
    | `Fallback reason -> (Str "fallback", [ ("reason", Str reason) ])
  in
  let outcome =
    match t.outcome with
    | Holds b -> [ ("holds", Bool b) ]
    | Answers (free, rows) ->
      [
        ("free", List (Stdlib.List.map (fun x -> Str x) free));
        ( "rows",
          List
            (Stdlib.List.map
               (fun row ->
                 List
                   (Stdlib.List.map
                      (fun v -> Str (Format.asprintf "%a" Value.pp v))
                      row))
               rows) );
      ]
  in
  Obj ((("mode", mode) :: detail) @ outcome)
