(* The cost model: cardinality estimation from column statistics, with
   textbook default selectivities where statistics are silent (quick
   stats on a column with no ready posting, or arbitrary residual
   predicates). Estimates are floats to survive multiplication without
   overflow; they only ever feed comparisons, never results. *)

let sel_eq_default = 0.1
let sel_range_default = 0.3
let sel_neq = 0.9

(* Selectivity of [column = const] given optional stats for the column. *)
let sel_eq_const ~distinct ~bounds ~value =
  match bounds with
  | Some (lo, hi) when value < lo || value > hi -> 0.0
  | _ -> (
    match distinct with
    | Some d when d > 0 -> 1.0 /. float_of_int d
    | _ -> sel_eq_default)

(* Selectivity of a packed range [lo, hi] (either side optional) on an
   int column, by linear interpolation over the known value bounds. *)
let sel_range ~bounds ~lo ~hi =
  match bounds with
  | Some (blo, bhi) when bhi > blo ->
    let width = float_of_int (bhi - blo) in
    let clamp v = Float.max (float_of_int blo) (Float.min (float_of_int bhi) v) in
    let lo_v = match lo with Some v -> clamp (float_of_int v) | None -> float_of_int blo in
    let hi_v = match hi with Some v -> clamp (float_of_int v) | None -> float_of_int bhi in
    if hi_v < lo_v then 0.0 else Float.min 1.0 ((hi_v -. lo_v +. 1.0) /. width)
  | Some (blo, bhi) ->
    (* single-valued column: in or out *)
    let v = blo in
    ignore bhi;
    let below = match hi with Some h -> v <= h | None -> true in
    let above = match lo with Some l -> v >= l | None -> true in
    if below && above then 1.0 else 0.0
  | None -> (
    match (lo, hi) with
    | Some _, Some _ -> sel_range_default *. sel_range_default
    | Some _, None | None, Some _ -> sel_range_default
    | None, None -> 1.0)

(* Equi-join output estimate: |L|·|R| / max(d_L, d_R) per join pair,
   with each distinct count clamped to the input estimate it came from
   (filters below the join can't increase distincts beyond rows).
   Distinct counts are floats with <= 0 meaning unknown, defaulting to
   rows/10, i.e. the eq default. *)
let join ~left_est ~right_est pairs =
  let one (dl, dr) =
    let resolve est d =
      Float.max 1.0
        (if d <= 0.0 then est *. sel_eq_default else Float.min est d)
    in
    1.0 /. Float.max (resolve left_est dl) (resolve right_est dr)
  in
  List.fold_left
    (fun acc pair -> acc *. one pair)
    (left_est *. right_est) pairs

(* Anti-join (generalized difference) retention: without correlation
   statistics, assume half the left side survives. *)
let sel_anti = 0.5
