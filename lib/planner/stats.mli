(** Per-column statistics over a {!Relational.Relation}.

    The cost model's input. Statistics come in two grades. [quick] costs
    O(arity) on top of what the relation already knows: live cardinality
    plus distinct counts and int bounds for columns whose postings are
    already built (it never forces an index build, so it is safe in the
    per-repair hot path). [scan] is exact: one pass over the live tuples
    builds per-column value-count tables, yielding exact distinct counts
    and int min/max — and those count tables are what makes {!patch}
    possible, folding a mutation batch in without rescanning. *)

open Relational

type t

val quick : Relation.t -> t
(** Cheap statistics from whatever the relation's lazily built postings
    already know. Never builds an index. Columns without a ready posting
    report unknown distinct counts and no bounds. *)

val scan : Relation.t -> t
(** Exact statistics from one full pass, keeping per-column value-count
    tables so the result is patchable. Emits a ["planner.stats"] span. *)

val rebuild : t -> Relation.t -> unit
(** Rescan in place (exact stats only in practice — the count tables are
    refilled when present), bumping the {!rebuilt} counter. *)

val patch : t -> delete:Tuple.t list -> insert:Tuple.t list -> unit
(** Fold a mutation batch into exact statistics in place: O(batch ·
    arity) expected, except that a delete removing a column's current
    min/max value entirely pays one O(distinct) bound recomputation.
    Deletions are applied before insertions, matching the instance's
    batch convention. Raises [Invalid_argument] on [quick] statistics or
    when deleting a value the statistics never counted. *)

val relation_name : t -> string
val rows : t -> int
val arity : t -> int

val exact : t -> bool
(** [true] for {!scan}-built statistics, [false] for {!quick}. *)

val distinct : t -> int -> int option
(** Distinct live values in the column; [None] when unknown (quick stats
    over a column with no ready posting). *)

val bounds : t -> int -> (int * int) option
(** Packed (min, max) of an int column's live values; [None] when
    unknown or the relation is empty. {!Relational.Value.pack} is
    strictly monotone on ints, so packed order is numeric order. *)

val column_ty : t -> int -> [ `Name | `Int ]

val patched : t -> int
(** Batches folded in by {!patch} since the last scan — together with
    {!rebuilt} this is the staleness/invalidation counter surfaced by
    the shell's [stats] command. *)

val rebuilt : t -> int
(** Full scans performed ({!scan} counts as the first). *)

val pp : Format.formatter -> t -> unit
