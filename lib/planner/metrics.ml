(* Planner metrics.  The q-error definition follows the usual planner
   literature: per executed operator, |log2((est+1)/(actual+1))| — 0 is
   a perfect estimate, 1 is off by 2x in either direction, with +1
   smoothing so empty results don't divide by zero. *)

let plan_seconds =
  Obs.Registry.histogram ~help:"Query compilation latency"
    "prefdb_planner_plan_seconds"

let execute_seconds =
  Obs.Registry.histogram ~help:"Compiled plan execution latency"
    "prefdb_planner_execute_seconds"

let qerror_hist =
  Obs.Registry.histogram ~buckets:Obs.Metric.qerror_buckets
    ~help:"Per-operator cardinality misestimate, |log2((est+1)/(actual+1))|"
    "prefdb_planner_qerror_log2"

(* The compiler's [Unsupported] reasons interpolate relation and
   variable names; collapse them to a bounded label set so the
   fallback counter cannot grow one cell per query. *)
let reason_class reason =
  let has prefix = String.length reason >= String.length prefix
                   && String.sub reason 0 (String.length prefix) = prefix in
  let contains needle =
    let n = String.length reason and m = String.length needle in
    let rec scan i = i + m <= n && (String.sub reason i m = needle || scan (i + 1)) in
    scan 0
  in
  if has "unknown relation" then "unknown-relation"
  else if has "atom " && contains "arity" then "arity"
  else if has "disjunctive normal form" then "dnf-blowup"
  else if has "formula not in negation normal form" then "not-nnf"
  else if has "no relational atoms" then "no-atoms"
  else if has "free variable" then "unbound-free-variable"
  else if has "variable " then "unsafe-variable"
  else if has "comparison over unbound" then "unbound-comparison"
  else if has "disjuncts disagree" then "union-type-mismatch"
  else "other"

let fallback_counter cls =
  Obs.Registry.counter
    ~labels:[ ("reason", cls) ]
    ~help:"Queries that fell back to the active-domain evaluator"
    "prefdb_planner_fallback_total"

(* register the family eagerly: a scrape of a process that never fell
   back must still show the zero, not a missing series *)
let () = ignore (fallback_counter "other")

let count_fallback reason =
  Obs.Metric.incr (fallback_counter (reason_class reason))

let qerror ~est ~actual =
  Float.abs (Float.log2 ((est +. 1.0) /. (Float.of_int actual +. 1.0)))

(* Walk every executed node once; plans share subtrees between
   disjuncts (node caching), so dedup on [nid]. *)
let qerrors plan =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec node (n : Phys.node) =
    if not (Hashtbl.mem seen n.Phys.nid) then begin
      Hashtbl.add seen n.Phys.nid ();
      if n.Phys.actual >= 0 then
        acc := qerror ~est:n.Phys.est ~actual:n.Phys.actual :: !acc;
      match n.Phys.shape with
      | Phys.Scan _ | Phys.Empty -> ()
      | Phys.Hash_join { left; right; _ } | Phys.Merge_join { left; right; _ }
      | Phys.Diff (left, right) ->
        node left;
        node right
      | Phys.Filter (_, inner) | Phys.Project (_, inner) -> node inner
      | Phys.Union ns -> List.iter node ns
    end
  in
  let rec bnode (b : Phys.bnode) =
    match b.Phys.bshape with
    | Phys.B_const _ -> ()
    | Phys.B_not inner -> bnode inner
    | Phys.B_and bs | Phys.B_or bs -> List.iter bnode bs
    | Phys.B_block n -> node n
  in
  (match plan with
  | Phys.Rows { root; _ } -> node root
  | Phys.Bool b -> bnode b);
  List.rev !acc

let record_qerrors plan =
  List.iter (Obs.Metric.observe qerror_hist) (qerrors plan)

let qerror_summary () =
  let snap = Obs.Metric.snapshot qerror_hist in
  if snap.Obs.Metric.count = 0 then None
  else
    Some
      ( Obs.Metric.quantile snap 0.5,
        snap.Obs.Metric.max,
        snap.Obs.Metric.count )
