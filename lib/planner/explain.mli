(** EXPLAIN reports: the physical plan a query compiles to, executed,
    with estimated vs. actual cardinalities per operator.

    One report feeds every surface: the shell's [plan] and [explain]
    commands, [prefdb explain], and the serve protocol (text and JSON
    forms). Queries outside the compilable fragment report the fallback
    reason and still carry the evaluator's result. *)

open Relational
open Query

type outcome =
  | Holds of bool  (** closed query *)
  | Answers of string list * Value.t list list  (** open query *)

type t = {
  mode : [ `Planned of Phys.plan | `Fallback of string ];
  outcome : outcome;
}

val run : ?stats:(string -> Stats.t option) -> Database.t -> Ast.t -> t
(** Compile and execute. Raises like {!Query.Eval.holds} on queries the
    evaluator rejects (unknown relation, wrong arity). *)

val pp : Format.formatter -> t -> unit

(** [pp_plan_only] prints just the plan tree (or the fallback reason),
    without the result line — the prefix the [explain] surfaces put
    above their own verdicts. *)
val pp_plan_only : Format.formatter -> t -> unit
val to_json : t -> Obs.Json.t
