(** The cost-based query compiler.

    Compiles first-order queries into physical plans ({!Phys}) over the
    safe-range fragment: existential blocks of positive atoms and
    comparisons, closed under conjunction, disjunction (union / boolean
    or), negated atoms and bounded universal quantification (anti-join),
    with constant equality comparisons as postings probes and order
    comparisons on int columns as range scans. Join order is chosen
    greedily by estimated cardinality from per-column {!Stats}.

    Safety is what keeps the compiled plan equal to the active-domain
    evaluator {!Query.Eval}: every variable — free, quantified, or used
    in a comparison or negation — must be bound by a positive atom in
    scope, and each existential binder must be so bound in {e every}
    disjunct of its scope. Queries outside the fragment are rejected
    ([Error]), never miscompiled; the engine then falls back to the
    evaluator. *)

open Relational
open Query

val compile :
  ?stats:(string -> Stats.t option) ->
  Database.t ->
  Ast.t ->
  (Phys.plan, string) result
(** [compile ?stats db q] is the physical plan, or [Error reason] when
    [q] falls outside the compilable fragment (including queries
    {!Query.Eval.check} rejects, so the fallback raises exactly as the
    evaluator would). [stats] supplies per-relation statistics — e.g.
    the durable store's incrementally patched ones; relations it does
    not cover (or when omitted) use {!Stats.quick}, computed once per
    compilation. *)

val supported : ?stats:(string -> Stats.t option) -> Database.t -> Ast.t -> bool
(** Whether {!compile} succeeds (diagnostics). *)
