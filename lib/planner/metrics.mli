(** Planner metrics: phase latency histograms, fallback accounting and
    estimate-quality (q-error) tracking.

    Recording happens in the spanned engine entry points and
    {!Explain.run} — the span-free per-repair hot path only pays a
    counter increment when it actually falls back to the evaluator. *)

val plan_seconds : Obs.Metric.histogram
(** Time spent in {!Compile.compile}. *)

val execute_seconds : Obs.Metric.histogram
(** Time spent executing a compiled plan. *)

val count_fallback : string -> unit
(** Record one fallback to the active-domain evaluator, labelled with
    the coarse class of the [Unsupported] reason. *)

val reason_class : string -> string
(** Map a free-form compiler rejection message to a bounded label set
    ("unknown-relation", "arity", "dnf-blowup", ..., "other"), keeping
    the fallback counter's label cardinality finite. *)

val qerrors : Phys.plan -> float list
(** Per-operator cardinality misestimates of every executed node:
    [|log2 ((est + 1) / (actual + 1))|], shared subtrees counted
    once. Nodes never executed (anti-join short cuts, unvisited
    disjuncts) are skipped. *)

val record_qerrors : Phys.plan -> unit
(** Feed {!qerrors} into the q-error histogram. *)

val qerror_summary : unit -> (float * float * int) option
(** [(median, max, count)] of every q-error recorded so far in this
    process, from the histogram (median is bucket-interpolated);
    [None] when nothing was recorded. *)
