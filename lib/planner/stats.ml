open Relational

(* Per-column statistics, the cost model's input. Two grades:

   - [quick] is what the hot CQA loop can afford: O(1) live cardinality
     plus whatever the relation's lazily built postings already know
     (never forcing a build). Per-repair relations are freshly
     materialized, so in the hot path this usually means row counts
     only and the cost model falls back to textbook default
     selectivities.

   - [scan] is exact: one pass over the live tuples builds per-column
     value-count tables, from which distinct counts and int min/max
     follow. The count tables are kept, which is what makes [patch]
     possible — folding a Delta batch in place without rescanning. *)

type col = {
  cty : [ `Name | `Int ];
  mutable distinct : int; (* -1 = unknown *)
  mutable lo : int; (* packed bounds; meaningful when [bounded] *)
  mutable hi : int;
  mutable bounded : bool;
  counts : (int, int) Hashtbl.t option; (* packed value -> multiplicity *)
}

type t = {
  relation : string;
  mutable rows : int;
  cols : col array;
  exact : bool;
  mutable patched : int; (* batches folded in by [patch] *)
  mutable rebuilt : int; (* full scans, the invalidation counter's dual *)
}

let relation_name s = s.relation
let rows s = s.rows
let arity s = Array.length s.cols
let exact s = s.exact
let patched s = s.patched
let rebuilt s = s.rebuilt

let distinct s i =
  let c = s.cols.(i) in
  if c.distinct < 0 then None else Some c.distinct

let bounds s i =
  let c = s.cols.(i) in
  if c.bounded then Some (c.lo, c.hi) else None

let column_ty s i = s.cols.(i).cty

let fresh_col ?(counted = false) cty =
  {
    cty;
    distinct = -1;
    lo = 0;
    hi = 0;
    bounded = false;
    counts = (if counted then Some (Hashtbl.create 64) else None);
  }

let make ~exact r =
  let schema = Relation.schema r in
  {
    relation = Schema.name schema;
    rows = Relation.cardinality r;
    cols =
      Array.init (Schema.arity schema) (fun i ->
          fresh_col ~counted:exact (Schema.ty_to_poly (Schema.ty_at schema i)));
    exact;
    patched = 0;
    rebuilt = 0;
  }

let quick r =
  let s = make ~exact:false r in
  Array.iteri
    (fun i c ->
      (* consult only postings that already exist: quick stats must never
         trigger an O(n) index build from inside the planning path *)
      if Relation.postings_ready r i then begin
        c.distinct <- Relation.group_count r i;
        if c.cty = `Int then
          match Relation.group_bounds r i with
          | Some (lo, hi) ->
            c.lo <- lo;
            c.hi <- hi;
            c.bounded <- true
          | None -> ()
      end)
    s.cols;
  s

let scan_into s r =
  s.rows <- Relation.cardinality r;
  Array.iter
    (fun c ->
      c.distinct <- 0;
      c.bounded <- false;
      Option.iter Hashtbl.reset c.counts)
    s.cols;
  Relation.iter
    (fun t ->
      Array.iteri
        (fun i c ->
          let v = Tuple.packed_get t i in
          let counts = Option.get c.counts in
          let n = Option.value (Hashtbl.find_opt counts v) ~default:0 in
          Hashtbl.replace counts v (n + 1);
          if n = 0 then begin
            c.distinct <- c.distinct + 1;
            if c.cty = `Int then
              if not c.bounded then begin
                c.lo <- v;
                c.hi <- v;
                c.bounded <- true
              end
              else begin
                if v < c.lo then c.lo <- v;
                if v > c.hi then c.hi <- v
              end
          end)
        s.cols)
    r;
  s.rebuilt <- s.rebuilt + 1

let scan r =
  Obs.Span.with_span "planner.stats"
    ~args:
      [
        ("relation", Obs.Event.Str (Schema.name (Relation.schema r)));
        ("tuples", Obs.Event.Int (Relation.cardinality r));
      ]
  @@ fun () ->
  let s = make ~exact:true r in
  scan_into s r;
  s

let rebuild s r =
  if not s.exact then
    invalid_arg "Stats.rebuild: only exact (scanned) statistics can be rebuilt";
  scan_into s r

(* Recompute one vanished bound from the count table: O(distinct), paid
   only when a delete removes the current extreme value entirely. *)
let refresh_bounds c =
  let counts = Option.get c.counts in
  if c.distinct = 0 then c.bounded <- false
  else begin
    let lo = ref max_int and hi = ref min_int in
    Hashtbl.iter
      (fun v _ ->
        if v < !lo then lo := v;
        if v > !hi then hi := v)
      counts;
    c.lo <- !lo;
    c.hi <- !hi;
    c.bounded <- true
  end

let patch s ~delete ~insert =
  if not s.exact then
    invalid_arg "Stats.patch: only exact (scanned) statistics are patchable";
  (* deletions first, mirroring the relation's batch convention (a batch
     may delete and re-insert the same tuple) *)
  List.iter
    (fun t ->
      s.rows <- s.rows - 1;
      Array.iteri
        (fun i c ->
          let v = Tuple.packed_get t i in
          let counts = Option.get c.counts in
          match Hashtbl.find_opt counts v with
          | None | Some 0 -> invalid_arg "Stats.patch: deleting an uncounted value"
          | Some 1 ->
            Hashtbl.remove counts v;
            c.distinct <- c.distinct - 1;
            if c.cty = `Int && c.bounded && (v = c.lo || v = c.hi) then
              refresh_bounds c
          | Some n -> Hashtbl.replace counts v (n - 1))
        s.cols)
    delete;
  List.iter
    (fun t ->
      s.rows <- s.rows + 1;
      Array.iteri
        (fun i c ->
          let v = Tuple.packed_get t i in
          let counts = Option.get c.counts in
          let n = Option.value (Hashtbl.find_opt counts v) ~default:0 in
          Hashtbl.replace counts v (n + 1);
          if n = 0 then begin
            c.distinct <- c.distinct + 1;
            if c.cty = `Int then
              if not c.bounded then begin
                c.lo <- v;
                c.hi <- v;
                c.bounded <- true
              end
              else begin
                if v < c.lo then c.lo <- v;
                if v > c.hi then c.hi <- v
              end
          end)
        s.cols)
    insert;
  s.patched <- s.patched + 1

let pp ppf s =
  Format.fprintf ppf "@[<v>%s: %d row(s), %s statistics (%d scan(s), %d patch(es))"
    s.relation s.rows
    (if s.exact then "exact" else "quick")
    s.rebuilt s.patched;
  Array.iteri
    (fun i c ->
      Format.fprintf ppf "@,  #%d: " i;
      (match distinct s i with
      | None -> Format.fprintf ppf "distinct ?"
      | Some d -> Format.fprintf ppf "distinct %d" d);
      if c.bounded && c.cty = `Int then
        Format.fprintf ppf ", range [%a .. %a]" Value.pp (Value.unpack c.lo)
          Value.pp (Value.unpack c.hi))
    s.cols;
  Format.fprintf ppf "@]"
