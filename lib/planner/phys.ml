open Relational

(* Physical plans: the executable operator trees the compiler emits.

   A node carries its estimated cardinality (set at plan time), its
   actual cardinality (set on execution, -1 before), and a result cache.
   The cache makes shared subtrees — the compiler reuses a node when two
   disjuncts mention the same access path — execute once, and is what
   EXPLAIN reads its actual counts from. *)

type range = { rlo : (int * bool) option; rhi : (int * bool) option }
(* packed bound + inclusive flag; [None] = unbounded on that side *)

type access = {
  probes : (int * Value.t) list;  (* column = constant, a postings probe *)
  range : (int * range) option;  (* one range-scanned int column *)
  residual : Algebra.selection list;  (* checked per surviving tuple *)
}

type node = {
  nid : int;
  tys : Schema.ty array;  (* output column types *)
  mutable est : float;
  mutable dist : float array;  (* estimated distinct values per column *)
  mutable actual : int;  (* -1 = not executed *)
  mutable cached : Relation.t option;
  shape : shape;
}

and shape =
  | Scan of { sname : string; aidx : int; srel : Relation.t; access : access }
      (* [aidx] = position of the source atom in the query, for EXPLAIN *)
  | Hash_join of {
      pairs : (int * int) list;
      left : node;
      right : node;
      build_left : bool;
    }  (* output = left columns then right columns, irrespective of build side *)
  | Merge_join of { lcol : int; rcol : int; left : node; right : node }
      (* lockstep walk of the two sides' sorted postings on the join column *)
  | Filter of Algebra.selection * node
  | Project of int list * node
  | Diff of node * node  (* anti-join: left rows absent from right *)
  | Union of node list
  | Empty

type bnode = { mutable bval : bool option; bshape : bshape }

and bshape =
  | B_const of bool
  | B_not of bnode
  | B_and of bnode list
  | B_or of bnode list
  | B_block of node  (* true iff the block produces at least one row *)

type plan = Rows of { free : string list; root : node } | Bool of bnode

let fresh_schema tys =
  Schema.make "q"
    (List.mapi (fun i ty -> (Printf.sprintf "c%d" i, ty)) (Array.to_list tys))

let node =
  let counter = ref 0 in
  fun tys shape ->
    incr counter;
    {
      nid = !counter;
      tys;
      est = 0.0;
      dist = Array.map (fun _ -> -1.0) tys;
      actual = -1;
      cached = None;
      shape;
    }

(* --- execution ---------------------------------------------------------- *)

let scan_exec srel access =
  (* postings are built from the live set and maintained in lockstep
     with it, so every probe/range result is already live-only — seed
     the intersection from the first index result instead of paying an
     O(universe) pass over [live_ids] *)
  let seeded =
    List.fold_left
      (fun acc (col, v) ->
        let m = Relation.matching srel col (Value.pack v) in
        match acc with
        | None -> Some m
        | Some ids -> Some (Graphs.Vset.inter ids m))
      None access.probes
  in
  let seeded =
    match access.range with
    | None -> seeded
    | Some (col, { rlo; rhi }) ->
      let m = Relation.matching_range srel col ~lo:rlo ~hi:rhi in
      Some
        (match seeded with
        | None -> m
        | Some ids -> Graphs.Vset.inter ids m)
  in
  let ids =
    match seeded with Some ids -> ids | None -> Relation.live_ids srel
  in
  let out =
    if
      access.probes = [] && access.range = None
    then srel
    else Relation.restrict_ids srel ids
  in
  match access.residual with
  | [] -> out
  | sels -> Relation.filter (Algebra.selection_holds (Algebra.Conj sels)) out

let hash_join_exec ~pairs ~build_left left right out_schema =
  let lkeys = List.map fst pairs and rkeys = List.map snd pairs in
  let build, probe, build_keys, probe_keys =
    if build_left then (left, right, lkeys, rkeys)
    else (right, left, rkeys, lkeys)
  in
  let index = Hashtbl.create (max 16 (Relation.cardinality build)) in
  Relation.iter
    (fun t ->
      let key = Tuple.project_packed t build_keys in
      let existing = Option.value (Hashtbl.find_opt index key) ~default:[] in
      Hashtbl.replace index key (t :: existing))
    build;
  let out =
    Relation.Builder.create ~size_hint:(Relation.cardinality probe) out_schema
  in
  Relation.iter
    (fun t ->
      List.iter
        (fun bt ->
          Relation.Builder.add out
            (if build_left then Tuple.concat bt t else Tuple.concat t bt))
        (Option.value
           (Hashtbl.find_opt index (Tuple.project_packed t probe_keys))
           ~default:[]))
    probe;
  Relation.Builder.finish out

(* Walk both sides' postings on the join column in increasing packed
   order — on int columns packing is strictly monotone, so this is the
   numeric order. Building the postings on the (already restricted)
   inputs is the merge join's sort phase. *)
let merge_join_exec ~lcol ~rcol left right out_schema =
  let out =
    Relation.Builder.create
      ~size_hint:(max (Relation.cardinality left) (Relation.cardinality right))
      out_schema
  in
  let lseq = Relation.groups left lcol and rseq = Relation.groups right rcol in
  let rec walk lseq rseq =
    match (lseq (), rseq ()) with
    | Seq.Nil, _ | _, Seq.Nil -> ()
    | Seq.Cons ((lk, lids), ltl), Seq.Cons ((rk, rids), rtl) ->
      if lk < rk then walk ltl (fun () -> Seq.Cons ((rk, rids), rtl))
      else if rk < lk then walk (fun () -> Seq.Cons ((lk, lids), ltl)) rtl
      else begin
        Graphs.Vset.iter
          (fun lid ->
            let lt = Relation.fact left lid in
            Graphs.Vset.iter
              (fun rid ->
                Relation.Builder.add out (Tuple.concat lt (Relation.fact right rid)))
              rids)
          lids;
        walk ltl rtl
      end
  in
  walk lseq rseq;
  Relation.Builder.finish out

let rec exec n =
  match n.cached with
  | Some r -> r
  | None ->
    let r =
      match n.shape with
      | Scan { srel; access; _ } -> scan_exec srel access
      | Hash_join { pairs; left; right; build_left } ->
        hash_join_exec ~pairs ~build_left (exec left) (exec right)
          (fresh_schema n.tys)
      | Merge_join { lcol; rcol; left; right } ->
        merge_join_exec ~lcol ~rcol (exec left) (exec right)
          (fresh_schema n.tys)
      | Filter (sel, inner) ->
        Relation.filter (Algebra.selection_holds sel) (exec inner)
      | Project (cols, inner) ->
        let input = exec inner in
        let b =
          Relation.Builder.create
            ~size_hint:(Relation.cardinality input)
            (fresh_schema n.tys)
        in
        Relation.iter (fun t -> Relation.Builder.add b (Tuple.sub t cols)) input;
        Relation.Builder.finish b
      | Diff (l, r) ->
        let left = exec l and right = exec r in
        let b =
          Relation.Builder.create ~size_hint:(Relation.cardinality left)
            (fresh_schema n.tys)
        in
        Relation.iter
          (fun t -> if not (Relation.mem right t) then Relation.Builder.add b t)
          left;
        Relation.Builder.finish b
      | Union parts ->
        let b = Relation.Builder.create (fresh_schema n.tys) in
        List.iter (fun p -> Relation.iter (Relation.Builder.add b) (exec p)) parts;
        Relation.Builder.finish b
      | Empty -> Relation.empty (fresh_schema n.tys)
    in
    n.cached <- Some r;
    n.actual <- Relation.cardinality r;
    r

(* Short-circuit boolean evaluation: cheap-looking blocks first would be
   nicer still, but the compiler already orders disjuncts/conjuncts by
   estimate, so evaluation order is plan order. *)
let rec run_bool bn =
  match bn.bval with
  | Some v -> v
  | None ->
    let v =
      match bn.bshape with
      | B_const b -> b
      | B_not b -> not (run_bool b)
      | B_and bs -> List.for_all run_bool bs
      | B_or bs -> List.exists run_bool bs
      | B_block n -> not (Relation.is_empty (exec n))
    in
    bn.bval <- Some v;
    v

(* --- printing ----------------------------------------------------------- *)

let pp_card ppf n =
  if n.actual < 0 then Format.fprintf ppf "(est %.1f, not run)" n.est
  else Format.fprintf ppf "(est %.1f, actual %d)" n.est n.actual

let pp_access ppf a =
  List.iter
    (fun (col, v) -> Format.fprintf ppf " #%d=%a" col Value.pp v)
    a.probes;
  (match a.range with
  | None -> ()
  | Some (col, { rlo; rhi }) ->
    let bound ppf = function
      | None -> Format.pp_print_string ppf "_"
      | Some (v, incl) ->
        Format.fprintf ppf "%a%s" Value.pp (Value.unpack v)
          (if incl then "" else "!")
    in
    Format.fprintf ppf " #%d in [%a .. %a]" col bound rlo bound rhi);
  match a.residual with
  | [] -> ()
  | sels ->
    Format.fprintf ppf " where %a" Algebra.pp_selection (Algebra.Conj sels)

let rec pp ppf n =
  match n.shape with
  | Scan { sname; aidx; access; _ } ->
    let kind =
      if access.probes <> [] then "index scan"
      else if access.range <> None then "range scan"
      else "scan"
    in
    Format.fprintf ppf "%s %s atom:%d%a %a" kind sname aidx pp_access access
      pp_card n
  | Hash_join { pairs; left; right; build_left } ->
    Format.fprintf ppf "@[<v 2>hash join {%s} build:%s %a@,%a@,%a@]"
      (String.concat "; "
         (List.map (fun (i, j) -> Printf.sprintf "%d=%d" i j) pairs))
      (if build_left then "left" else "right")
      pp_card n pp left pp right
  | Merge_join { lcol; rcol; left; right } ->
    Format.fprintf ppf "@[<v 2>merge join {%d=%d} %a@,%a@,%a@]" lcol rcol
      pp_card n pp left pp right
  | Filter (sel, inner) ->
    Format.fprintf ppf "@[<v 2>filter %a %a@,%a@]" Algebra.pp_selection sel
      pp_card n pp inner
  | Project (cols, inner) ->
    Format.fprintf ppf "@[<v 2>project [%s] %a@,%a@]"
      (String.concat "; " (List.map string_of_int cols))
      pp_card n pp inner
  | Diff (l, r) ->
    Format.fprintf ppf "@[<v 2>anti join %a@,%a@,%a@]" pp_card n pp l pp r
  | Union parts ->
    Format.fprintf ppf "@[<v 2>union (%d branch(es)) %a" (List.length parts)
      pp_card n;
    List.iter (fun p -> Format.fprintf ppf "@,%a" pp p) parts;
    Format.fprintf ppf "@]"
  | Empty -> Format.fprintf ppf "empty %a" pp_card n

let rec pp_bool ppf bn =
  let truth ppf bn =
    match bn.bval with
    | None -> ()
    | Some v -> Format.fprintf ppf " = %b" v
  in
  match bn.bshape with
  | B_const b -> Format.fprintf ppf "const %b" b
  | B_not b -> Format.fprintf ppf "@[<v 2>not%a@,%a@]" truth bn pp_bool b
  | B_and bs ->
    Format.fprintf ppf "@[<v 2>and%a" truth bn;
    List.iter (fun b -> Format.fprintf ppf "@,%a" pp_bool b) bs;
    Format.fprintf ppf "@]"
  | B_or bs ->
    Format.fprintf ppf "@[<v 2>or%a" truth bn;
    List.iter (fun b -> Format.fprintf ppf "@,%a" pp_bool b) bs;
    Format.fprintf ppf "@]"
  | B_block n -> Format.fprintf ppf "@[<v 2>nonempty%a@,%a@]" truth bn pp n

let pp_plan ppf = function
  | Rows { free; root } ->
    Format.fprintf ppf "@[<v 2>answers (%s)@,%a@]" (String.concat ", " free) pp
      root
  | Bool bn -> pp_bool ppf bn

(* --- JSON --------------------------------------------------------------- *)

let json_str s = Obs.Json.Str s

let rec to_json n =
  let open Obs.Json in
  let base op extra children =
    Obj
      (("op", json_str op)
      :: ("est", Float n.est)
      :: ("actual", Int n.actual)
      :: extra
      @ (if children = [] then []
         else [ ("children", List (List.map to_json children)) ]))
  in
  match n.shape with
  | Scan { sname; aidx; access; _ } ->
    let kind =
      if access.probes <> [] then "index-scan"
      else if access.range <> None then "range-scan"
      else "scan"
    in
    base kind
      [
        ("relation", json_str sname);
        ("atom", Obs.Json.Int aidx);
        ("access", json_str (Format.asprintf "%a" pp_access access));
      ]
      []
  | Hash_join { pairs; left; right; build_left } ->
    base "hash-join"
      [
        ( "pairs",
          json_str
            (String.concat ";"
               (List.map (fun (i, j) -> Printf.sprintf "%d=%d" i j) pairs)) );
        ("build", json_str (if build_left then "left" else "right"));
      ]
      [ left; right ]
  | Merge_join { lcol; rcol; left; right } ->
    base "merge-join"
      [ ("pairs", json_str (Printf.sprintf "%d=%d" lcol rcol)) ]
      [ left; right ]
  | Filter (sel, inner) ->
    base "filter"
      [ ("predicate", json_str (Format.asprintf "%a" Algebra.pp_selection sel)) ]
      [ inner ]
  | Project (cols, inner) ->
    base "project"
      [ ("columns", json_str (String.concat ";" (List.map string_of_int cols))) ]
      [ inner ]
  | Diff (l, r) -> base "anti-join" [] [ l; r ]
  | Union parts -> base "union" [] parts
  | Empty -> base "empty" [] []

let rec bool_to_json bn =
  let open Obs.Json in
  let value =
    match bn.bval with None -> Null | Some v -> Bool v
  in
  match bn.bshape with
  | B_const b -> Obj [ ("op", json_str "const"); ("value", Bool b) ]
  | B_not b ->
    Obj
      [
        ("op", json_str "not"); ("value", value);
        ("children", List [ bool_to_json b ]);
      ]
  | B_and bs ->
    Obj
      [
        ("op", json_str "and"); ("value", value);
        ("children", List (List.map bool_to_json bs));
      ]
  | B_or bs ->
    Obj
      [
        ("op", json_str "or"); ("value", value);
        ("children", List (List.map bool_to_json bs));
      ]
  | B_block n ->
    Obj
      [
        ("op", json_str "nonempty"); ("value", value);
        ("children", List [ to_json n ]);
      ]

let plan_to_json = function
  | Rows { free; root } ->
    Obs.Json.Obj
      [
        ("kind", json_str "rows");
        ("free", Obs.Json.List (List.map json_str free));
        ("root", to_json root);
      ]
  | Bool bn ->
    Obs.Json.Obj [ ("kind", json_str "bool"); ("root", bool_to_json bn) ]
