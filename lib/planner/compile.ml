open Relational
open Query

(* The cost-based compiler: first-order queries to physical plans.

   The compilable fragment is the safe-range one: after standardizing
   binders apart and normalizing to NNF, each existential block splits
   into disjuncts of positive atoms, comparisons, negated atoms and
   bounded universals; a block compiles when every variable — free,
   quantified, or used in a comparison or negation — is bound by a
   positive atom in scope. On that fragment the compiled plan agrees
   with the active-domain evaluator (cross-checked by the test suite);
   anything outside it is rejected with [Unsupported] and the engine
   falls back to {!Query.Eval}, so widening never changes semantics.

   Compared to the legacy {!Query.Plan} (safe existential-conjunctive
   only, syntactic join order), this planner adds disjunction (union /
   boolean or), negation and bounded universal quantification
   (anti-join), range scans for order comparisons on int columns, merge
   joins over sorted postings, and statistics-driven join ordering. *)

exception Unsupported of string

(* One disjunct is statically unsatisfiable (wrong-typed constant, false
   ground comparison, [<] between names). With unions in the language a
   false block is dropped, not propagated: the exception never escapes a
   per-disjunct build. *)
exception Block_false

let max_disjuncts = 64

let unsupported fmt = Printf.ksprintf (fun m -> raise (Unsupported m)) fmt

let cmp_to_algebra = function
  | Ast.Eq -> Algebra.Eq
  | Ast.Neq -> Algebra.Neq
  | Ast.Lt -> Algebra.Lt
  | Ast.Gt -> Algebra.Gt
  | Ast.Leq -> Algebra.Leq
  | Ast.Geq -> Algebra.Geq

let val_ty = function Value.Name _ -> `Name | Value.Int _ -> `Int
let poly_at node i = Schema.ty_to_poly node.Phys.tys.(i)

(* ---- normalized conjuncts ------------------------------------------------ *)

type conjunct =
  | C_atom of string * Ast.term list
  | C_cmp of Ast.cmp * Ast.term * Ast.term
  | C_not_atom of string * Ast.term list
  | C_forall of string list * Ast.t  (* body in NNF *)

let positively_bound x d =
  List.exists
    (function
      | C_atom (_, ts) ->
        List.exists (function Ast.Var y -> y = x | Ast.Const _ -> false) ts
      | _ -> false)
    d

(* DNF split of an NNF, standardized-apart formula. Existential binders
   are dropped — sound because binder names are globally unique — but
   each must be bound by a positive atom in every disjunct of its scope:
   that is what makes the block's value independent of the active
   domain (the evaluator's [exists] over an empty domain is false even
   for a true body, so an unbound binder cannot be compiled away). *)
let split f =
  let rec go = function
    | Ast.True -> [ [] ]
    | Ast.False -> []
    | Ast.Atom (r, ts) -> [ [ C_atom (r, ts) ] ]
    | Ast.Cmp (op, a, b) -> [ [ C_cmp (op, a, b) ] ]
    | Ast.Not (Ast.Atom (r, ts)) -> [ [ C_not_atom (r, ts) ] ]
    | Ast.Forall (xs, g) -> [ [ C_forall (xs, g) ] ]
    | Ast.Or (g, h) ->
      let ds = go g @ go h in
      if List.length ds > max_disjuncts then
        unsupported "disjunctive normal form exceeds %d disjuncts" max_disjuncts
      else ds
    | Ast.And (g, h) ->
      let l = go g and r = go h in
      if List.length l * List.length r > max_disjuncts then
        unsupported "disjunctive normal form exceeds %d disjuncts" max_disjuncts
      else List.concat_map (fun d1 -> List.map (fun d2 -> d1 @ d2) r) l
    | Ast.Exists (xs, g) ->
      let ds = go g in
      List.iter
        (fun d ->
          List.iter
            (fun x ->
              if not (positively_bound x d) then
                unsupported
                  "quantified variable %S is not bound by a positive atom" x)
            xs)
        ds;
      ds
    | Ast.Not _ | Ast.Implies _ ->
      (* nnf leaves Not only over atoms and no Implies *)
      unsupported "formula not in negation normal form"
  in
  go f

(* ---- compilation context ------------------------------------------------- *)

type ctx = {
  db : Database.t;
  stats : string -> Stats.t option;
  qcache : (string, Stats.t) Hashtbl.t;  (* fallback quick stats, per compile *)
}

let make_ctx ?(stats = fun _ -> None) db =
  { db; stats; qcache = Hashtbl.create 4 }

let stats_for ctx name rel =
  match ctx.stats name with
  | Some s -> s
  | None -> (
    match Hashtbl.find_opt ctx.qcache name with
    | Some s -> s
    | None ->
      let s = Stats.quick rel in
      Hashtbl.add ctx.qcache name s;
      s)

(* ---- leaf compilation ---------------------------------------------------- *)

type leaf = {
  lnode : Phys.node;
  lvars : (string, int) Hashtbl.t;  (* variable -> first column *)
}

let sel_default = function
  | Ast.Eq -> Cost.sel_eq_default
  | Ast.Neq -> Cost.sel_neq
  | Ast.Lt | Ast.Gt | Ast.Leq | Ast.Geq -> Cost.sel_range_default

(* Tightest bounds from a list of order comparisons on one int column:
   [(op, v)] with op ∈ {Lt, Gt, Leq, Geq}, packed; at equal packed
   values the exclusive bound is tighter. *)
let bounds_of_cmps cmps =
  let tighten_lo acc (v, incl) =
    match acc with
    | None -> Some (v, incl)
    | Some (v', incl') ->
      if v > v' then Some (v, incl)
      else if v < v' then Some (v', incl')
      else Some (v, incl && incl')
  in
  let tighten_hi acc (v, incl) =
    match acc with
    | None -> Some (v, incl)
    | Some (v', incl') ->
      if v < v' then Some (v, incl)
      else if v > v' then Some (v', incl')
      else Some (v, incl && incl')
  in
  List.fold_left
    (fun (lo, hi) (op, v) ->
      let p = Value.pack v in
      match op with
      | Ast.Lt -> (lo, tighten_hi hi (p, false))
      | Ast.Leq -> (lo, tighten_hi hi (p, true))
      | Ast.Gt -> (tighten_lo lo (p, false), hi)
      | Ast.Geq -> (tighten_lo lo (p, true), hi)
      | Ast.Eq | Ast.Neq -> (lo, hi))
    (None, None) cmps

(* Compile one positive atom into a scan leaf. [pushed] maps a variable
   to the constant comparisons this disjunct asserts about it; they are
   folded into the access path of every leaf binding the variable
   (conjunctive, so duplication only tightens intermediate results). *)
let compile_leaf ctx aidx (r, ts) pushed =
  let rel =
    match Database.find ctx.db r with
    | Some rel -> rel
    | None -> unsupported "unknown relation %S" r
  in
  let schema = Relation.schema rel in
  let arity = Schema.arity schema in
  if List.length ts <> arity then
    unsupported "atom %s has arity %d, expected %d" r (List.length ts) arity;
  let probes = ref [] in
  let residual = ref [] in
  let ranged : (int, (Ast.cmp * Value.t) list) Hashtbl.t = Hashtbl.create 2 in
  let lvars = Hashtbl.create 8 in
  let push_cmp col op v =
    let ty = Schema.ty_to_poly (Schema.ty_at schema col) in
    let tv = val_ty v in
    if ty <> tv then (
      (* cross-domain: != is vacuous, everything else unsatisfiable *)
      match op with Ast.Neq -> () | _ -> raise Block_false)
    else
      match (ty, op) with
      | `Name, (Ast.Lt | Ast.Gt) -> raise Block_false
      | `Name, (Ast.Leq | Ast.Geq) | _, Ast.Eq ->
        (* <=/>= between names collapse to = *)
        probes := (col, v) :: !probes
      | _, Ast.Neq ->
        residual := Algebra.Const_cmp (Algebra.Neq, col, v) :: !residual
      | `Int, ((Ast.Lt | Ast.Gt | Ast.Leq | Ast.Geq) as op) ->
        let existing = Option.value (Hashtbl.find_opt ranged col) ~default:[] in
        Hashtbl.replace ranged col ((op, v) :: existing)
  in
  List.iteri
    (fun i t ->
      match t with
      | Ast.Const v ->
        if Schema.ty_to_poly (Schema.ty_at schema i) <> val_ty v then
          raise Block_false
        else probes := (i, v) :: !probes
      | Ast.Var x -> (
        match Hashtbl.find_opt lvars x with
        | Some j -> residual := Algebra.Attr_cmp (Algebra.Eq, i, j) :: !residual
        | None ->
          Hashtbl.replace lvars x i;
          List.iter (fun (op, v) -> push_cmp i op v) (pushed x)))
    ts;
  (* one column gets the range scan; order comparisons on any other int
     column stay residual *)
  let range_cols =
    Hashtbl.fold (fun col cmps acc -> (col, cmps) :: acc) ranged []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let range =
    match range_cols with
    | [] -> None
    | (col, cmps) :: rest ->
      List.iter
        (fun (col, cmps) ->
          List.iter
            (fun (op, v) ->
              residual :=
                Algebra.Const_cmp (cmp_to_algebra op, col, v) :: !residual)
            cmps)
        rest;
      let lo, hi = bounds_of_cmps cmps in
      Some (col, { Phys.rlo = lo; rhi = hi })
  in
  let access = { Phys.probes = !probes; range; residual = !residual } in
  let tys = Array.init arity (Schema.ty_at schema) in
  let node =
    Phys.node tys
      (Phys.Scan { sname = Schema.name schema; aidx; srel = rel; access })
  in
  (* estimate from statistics *)
  let s = stats_for ctx (Schema.name schema) rel in
  let col_bounds i =
    if Stats.column_ty s i = `Int then Stats.bounds s i else None
  in
  let sel = ref 1.0 in
  List.iter
    (fun (i, v) ->
      sel :=
        !sel
        *. Cost.sel_eq_const ~distinct:(Stats.distinct s i)
             ~bounds:(col_bounds i) ~value:(Value.pack v))
    access.probes;
  (match range with
  | None -> ()
  | Some (col, { Phys.rlo; rhi }) ->
    sel :=
      !sel
      *. Cost.sel_range ~bounds:(col_bounds col) ~lo:(Option.map fst rlo)
           ~hi:(Option.map fst rhi));
  List.iter
    (fun r ->
      let s =
        match r with
        | Algebra.Attr_cmp (op, _, _) | Algebra.Const_cmp (op, _, _) -> (
          match op with
          | Algebra.Eq -> Cost.sel_eq_default
          | Algebra.Neq -> Cost.sel_neq
          | _ -> Cost.sel_range_default)
        | Algebra.Conj _ -> 1.0
      in
      sel := !sel *. s)
    access.residual;
  let est = Float.max 0.0 (float_of_int (Stats.rows s) *. !sel) in
  node.Phys.est <- est;
  let probed = List.map fst access.probes in
  node.Phys.dist <-
    Array.init arity (fun i ->
        if List.mem i probed then 1.0
        else
          match Stats.distinct s i with
          | Some d -> Float.min (float_of_int d) (Float.max 1.0 est)
          | None -> -1.0);
  { lnode = node; lvars }

(* ---- accumulator --------------------------------------------------------- *)

type acc = {
  mutable anode : Phys.node;
  acols : (string, int) Hashtbl.t;  (* variable -> column in [anode] *)
}

(* Mirror of the legacy planner's comparison lowering: static rewrites
   for name-ordering and cross-domain cases, [Block_false] for the
   statically unsatisfiable ones, [None] for vacuous ones. *)
let lower_cmp acc (op, a, b) =
  let name_order = function
    | Ast.Lt | Ast.Gt -> raise Block_false
    | Ast.Leq | Ast.Geq -> Ast.Eq
    | (Ast.Eq | Ast.Neq) as op -> op
  in
  let cross_domain = function
    | Ast.Neq -> `Vacuous
    | Ast.Eq | Ast.Lt | Ast.Gt | Ast.Leq | Ast.Geq -> raise Block_false
  in
  let operand = function
    | Ast.Const v -> Some (`Const (v, val_ty v))
    | Ast.Var x -> (
      match Hashtbl.find_opt acc.acols x with
      | Some i -> Some (`Col (i, poly_at acc.anode i))
      | None -> None)
  in
  match (operand a, operand b) with
  | None, _ | _, None -> `Defer
  | Some (`Const (l, _)), Some (`Const (r, _)) ->
    if Algebra.eval_cmp (cmp_to_algebra op) l r then `Vacuous
    else raise Block_false
  | Some (`Col (i, ti)), Some (`Col (j, tj)) ->
    if ti <> tj then cross_domain op
    else
      let op = if ti = `Name then name_order op else op in
      `Sel (Algebra.Attr_cmp (cmp_to_algebra op, i, j), op)
  | Some (`Col (i, ti)), Some (`Const (v, tv))
  | Some (`Const (v, tv)), Some (`Col (i, ti)) -> (
    let flipped =
      match a with Ast.Const _ -> true | Ast.Var _ -> false
    in
    if ti <> tv then cross_domain op
    else
      let op =
        if flipped then
          match op with
          | Ast.Lt -> Ast.Gt
          | Ast.Gt -> Ast.Lt
          | Ast.Leq -> Ast.Geq
          | Ast.Geq -> Ast.Leq
          | (Ast.Eq | Ast.Neq) as o -> o
        else op
      in
      let op = if ti = `Name then name_order op else op in
      `Sel (Algebra.Const_cmp (cmp_to_algebra op, i, v), op))

let apply_filter acc sel op =
  let n =
    Phys.node acc.anode.Phys.tys (Phys.Filter (sel, acc.anode))
  in
  n.Phys.est <- acc.anode.Phys.est *. sel_default op;
  n.Phys.dist <- Array.copy acc.anode.Phys.dist;
  acc.anode <- n

(* Try every pending comparison against the current columns; keep the
   ones whose variables are still unbound. *)
let drain_pending acc pending =
  List.filter
    (fun cmp ->
      match lower_cmp acc cmp with
      | `Defer -> true
      | `Vacuous -> false
      | `Sel (sel, op) ->
        apply_filter acc sel op;
        false)
    pending

(* ---- join ordering ------------------------------------------------------- *)

let shared_pairs acc leaf =
  Hashtbl.fold
    (fun x j pairs ->
      match Hashtbl.find_opt acc.acols x with
      | Some i -> (i, j) :: pairs
      | None -> pairs)
    leaf.lvars []

let join_est acc leaf pairs =
  Cost.join ~left_est:acc.anode.Phys.est ~right_est:leaf.lnode.Phys.est
    (List.map
       (fun (i, j) -> (acc.anode.Phys.dist.(i), leaf.lnode.Phys.dist.(j)))
       pairs)

let plain_scan n =
  match n.Phys.shape with
  | Phys.Scan { access = { probes = []; range = None; residual = [] }; _ } ->
    true
  | _ -> false

let join_step acc leaf =
  let pairs = shared_pairs acc leaf in
  let est = join_est acc leaf pairs in
  let left = acc.anode and right = leaf.lnode in
  let shape =
    match pairs with
    | [ (i, j) ] when plain_scan left && plain_scan right ->
      (* both sides are whole-relation scans: walk their sorted postings
         in lockstep instead of building a hash table — the postings are
         owned by the base relations and shared across executions *)
      Phys.Merge_join { lcol = i; rcol = j; left; right }
    | _ ->
      Phys.Hash_join
        { pairs; left; right; build_left = left.Phys.est <= right.Phys.est }
  in
  let n = Phys.node (Array.append left.Phys.tys right.Phys.tys) shape in
  n.Phys.est <- est;
  n.Phys.dist <- Array.append left.Phys.dist right.Phys.dist;
  let offset = Array.length left.Phys.tys in
  Hashtbl.iter
    (fun x j ->
      if not (Hashtbl.mem acc.acols x) then
        Hashtbl.replace acc.acols x (offset + j))
    leaf.lvars;
  acc.anode <- n

(* ---- disjunct compilation ------------------------------------------------ *)

(* Greedy cost-based enumeration: start from the cheapest leaf (or the
   inherited accumulator when extending under a negation), then
   repeatedly add the connected leaf with the smallest estimated join
   result; a cartesian product only when no remaining leaf connects. *)

let rec build_disjunct ctx ?start d =
  (* split the disjunct into kinds, deciding ground comparisons now *)
  let atoms = ref [] and cmps = ref [] and negs = ref [] in
  List.iter
    (function
      | C_atom (r, ts) -> atoms := (r, ts) :: !atoms
      | C_cmp (op, a, b) -> (
        match (a, b) with
        | Ast.Const l, Ast.Const r ->
          if not (Algebra.eval_cmp (cmp_to_algebra op) l r) then
            raise Block_false
        | _ -> cmps := (op, a, b) :: !cmps)
      | C_not_atom (r, ts) -> negs := `Atom (r, ts) :: !negs
      | C_forall (xs, f) -> negs := `Forall (xs, f) :: !negs)
    d;
  let atoms = List.rev !atoms
  and cmps = List.rev !cmps
  and negs = List.rev !negs in
  (* constant comparisons on variables, for pushdown into leaves *)
  let const_cmps : (string, (Ast.cmp * Value.t) list) Hashtbl.t =
    Hashtbl.create 4
  in
  List.iter
    (fun (op, a, b) ->
      let record x op v =
        let existing =
          Option.value (Hashtbl.find_opt const_cmps x) ~default:[]
        in
        Hashtbl.replace const_cmps x ((op, v) :: existing)
      in
      match (a, b) with
      | Ast.Var x, Ast.Const v -> record x op v
      | Ast.Const v, Ast.Var x ->
        let flip = function
          | Ast.Lt -> Ast.Gt
          | Ast.Gt -> Ast.Lt
          | Ast.Leq -> Ast.Geq
          | Ast.Geq -> Ast.Leq
          | (Ast.Eq | Ast.Neq) as o -> o
        in
        record x (flip op) v
      | _ -> ())
    cmps;
  let pushed x =
    Option.value (Hashtbl.find_opt const_cmps x) ~default:[]
  in
  let leaves =
    List.mapi (fun i (r, ts) -> compile_leaf ctx i (r, ts) pushed) atoms
  in
  (* Constant comparisons already folded into every leaf binding their
     variable are dropped from the pending list; the rest (variable ×
     variable, or variables bound only upstream) apply as filters. *)
  let leaf_binds x = List.exists (fun l -> Hashtbl.mem l.lvars x) leaves in
  let pending =
    ref
      (List.filter
         (fun (_, a, b) ->
           match (a, b) with
           | Ast.Var x, Ast.Const _ | Ast.Const _, Ast.Var x ->
             not (leaf_binds x)
           | _ -> true)
         cmps)
  in
  let acc =
    match start with
    | Some acc -> acc
    | None -> (
      match leaves with
      | [] -> unsupported "no relational atoms"
      | _ ->
        (* cheapest leaf first *)
        let first =
          List.fold_left
            (fun best l ->
              if l.lnode.Phys.est < best.lnode.Phys.est then l else best)
            (List.hd leaves) (List.tl leaves)
        in
        { anode = first.lnode; acols = Hashtbl.copy first.lvars })
  in
  let remaining =
    ref
      (match start with
      | Some _ -> leaves
      | None -> List.filter (fun l -> not (l.lnode == acc.anode)) leaves)
  in
  pending := drain_pending acc !pending;
  while !remaining <> [] do
    let connected, rest =
      List.partition (fun l -> shared_pairs acc l <> []) !remaining
    in
    let pick, others =
      match connected with
      | [] ->
        (* disconnected: cartesian with the cheapest remaining leaf *)
        let cheapest =
          List.fold_left
            (fun best l ->
              if l.lnode.Phys.est < best.lnode.Phys.est then l else best)
            (List.hd rest) (List.tl rest)
        in
        (cheapest, List.filter (fun l -> not (l == cheapest)) rest)
      | _ ->
        let best =
          List.fold_left
            (fun best l ->
              let e = join_est acc l (shared_pairs acc l) in
              match best with
              | Some (_, be) when be <= e -> best
              | _ -> Some (l, e))
            None connected
        in
        let l = fst (Option.get best) in
        (l, List.filter (fun c -> not (c == l)) connected @ rest)
    in
    join_step acc pick;
    remaining := others;
    pending := drain_pending acc !pending
  done;
  (match !pending with
  | [] -> ()
  | (_, a, b) :: _ ->
    let name =
      match (a, b) with
      | Ast.Var x, _ | _, Ast.Var x -> x
      | _ -> "?"
    in
    unsupported "variable %S occurs only in comparisons (unsafe)" name);
  (* negations: generalized difference, one anti-join per negated
     disjunct, each built by extending the current accumulator *)
  List.iter (apply_negation ctx acc) negs;
  acc

and apply_negation ctx acc neg =
  let neg_disjuncts =
    match neg with
    | `Atom (r, ts) ->
      List.iter
        (function
          | Ast.Var x when not (Hashtbl.mem acc.acols x) ->
            unsupported
              "variable %S in a negated atom is not bound by a positive atom"
              x
          | _ -> ())
        ts;
      [ [ C_atom (r, ts) ] ]
    | `Forall (xs, f) ->
      let ds = split (Transform.nnf (Ast.Not f)) in
      List.iter
        (fun d ->
          List.iter
            (fun x ->
              if not (positively_bound x d) then
                unsupported
                  "universal variable %S is not bound by a positive atom in \
                   the negated body"
                  x)
            xs)
        ds;
      ds
  in
  let width = Array.length acc.anode.Phys.tys in
  List.iter
    (fun d ->
      match
        build_disjunct ctx
          ~start:{ anode = acc.anode; acols = Hashtbl.copy acc.acols }
          d
      with
      | exception Block_false -> ()  (* this negated disjunct can't fire *)
      | ext ->
        let keep = List.init width Fun.id in
        let proj =
          Phys.node acc.anode.Phys.tys (Phys.Project (keep, ext.anode))
        in
        proj.Phys.est <- Float.min ext.anode.Phys.est acc.anode.Phys.est;
        proj.Phys.dist <- Array.copy acc.anode.Phys.dist;
        let diff =
          Phys.node acc.anode.Phys.tys (Phys.Diff (acc.anode, proj))
        in
        diff.Phys.est <- acc.anode.Phys.est *. Cost.sel_anti;
        diff.Phys.dist <- Array.copy acc.anode.Phys.dist;
        acc.anode <- diff)
    neg_disjuncts

(* ---- blocks and the boolean layer ---------------------------------------- *)

(* Compile an existential block (or a bare atom) into one node per
   satisfiable disjunct. *)
let compile_block ctx f =
  let ds = split (Transform.nnf f) in
  List.filter_map
    (fun d ->
      match build_disjunct ctx d with
      | exception Block_false -> None
      | acc -> Some acc)
    ds

let bmake bshape = { Phys.bval = None; bshape }
let bconst b = bmake (Phys.B_const b)

let block_bool ctx f =
  match compile_block ctx f with
  | [] -> bconst false
  | accs ->
    let blocks =
      List.map (fun acc -> bmake (Phys.B_block acc.anode)) accs
      |> List.stable_sort (fun a b ->
             match (a.Phys.bshape, b.Phys.bshape) with
             | Phys.B_block x, Phys.B_block y -> compare x.Phys.est y.Phys.est
             | _ -> 0)
    in
    (match blocks with [ b ] -> b | bs -> bmake (Phys.B_or bs))

let rec compile_bool ctx = function
  | Ast.True -> bconst true
  | Ast.False -> bconst false
  | Ast.Cmp (op, a, b) -> (
    match (a, b) with
    | Ast.Const l, Ast.Const r ->
      bconst (Algebra.eval_cmp (cmp_to_algebra op) l r)
    | _ -> unsupported "comparison over unbound variables")
  | Ast.And (f, g) -> bmake (Phys.B_and [ compile_bool ctx f; compile_bool ctx g ])
  | Ast.Or (f, g) -> bmake (Phys.B_or [ compile_bool ctx f; compile_bool ctx g ])
  | Ast.Implies (f, g) ->
    bmake
      (Phys.B_or [ bmake (Phys.B_not (compile_bool ctx f)); compile_bool ctx g ])
  | Ast.Not f -> bmake (Phys.B_not (compile_bool ctx f))
  | Ast.Forall (xs, f) ->
    (* ∀x̄.φ ≡ ¬∃x̄.¬φ, with the existential compiled as a block *)
    bmake
      (Phys.B_not (block_bool ctx (Ast.Exists (xs, Transform.nnf (Ast.Not f)))))
  | (Ast.Atom _ | Ast.Exists _) as f -> block_bool ctx f

(* ---- open queries -------------------------------------------------------- *)

let compile_rows ctx free q =
  let accs = compile_block ctx q in
  let project acc =
    let cols =
      List.map
        (fun x ->
          match Hashtbl.find_opt acc.acols x with
          | Some i -> i
          | None -> unsupported "free variable %S not bound by an atom" x)
        free
    in
    let tys =
      Array.of_list (List.map (fun i -> acc.anode.Phys.tys.(i)) cols)
    in
    let n = Phys.node tys (Phys.Project (cols, acc.anode)) in
    n.Phys.est <- acc.anode.Phys.est;
    n.Phys.dist <- Array.of_list (List.map (fun i -> acc.anode.Phys.dist.(i)) cols);
    n
  in
  match List.map project accs with
  | [] ->
    Phys.node (Array.make (List.length free) Schema.TName) Phys.Empty
  | [ n ] -> n
  | n :: rest as nodes ->
    if List.exists (fun m -> m.Phys.tys <> n.Phys.tys) rest then
      unsupported "disjuncts disagree on answer column types";
    let u = Phys.node n.Phys.tys (Phys.Union nodes) in
    u.Phys.est <- List.fold_left (fun a m -> a +. m.Phys.est) 0.0 nodes;
    u.Phys.dist <- Array.copy n.Phys.dist;
    u

(* ---- entry --------------------------------------------------------------- *)

let compile ?stats db q =
  try
    (* static validation first, mirroring Eval.check: a query Eval would
       reject must fall back so both paths raise identically *)
    (match Eval.check db q with
    | Ok () -> ()
    | Error m -> raise (Unsupported m));
    let q' = Transform.standardize_apart q in
    let ctx = make_ctx ?stats db in
    match Ast.free_vars q' with
    | [] -> Ok (Phys.Bool (compile_bool ctx q'))
    | free -> Ok (Phys.Rows { free; root = compile_rows ctx free q' })
  with Unsupported m -> Error m

let supported ?stats db q = Result.is_ok (compile ?stats db q)
