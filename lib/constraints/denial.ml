open Relational

type cmp = Eq | Neq | Lt | Gt | Leq | Geq

type operand = Attr of int * string | Const of Value.t

type atom = { left : operand; op : cmp; right : operand }

type t = { label : string; nvars : int; body : atom list }

let make ?(label = "denial") ~nvars body =
  if nvars < 1 then invalid_arg "Denial.make: nvars < 1";
  if body = [] then invalid_arg "Denial.make: empty body";
  let check_operand = function
    | Attr (i, _) when i < 0 || i >= nvars ->
      invalid_arg "Denial.make: tuple variable out of range"
    | Attr _ | Const _ -> ()
  in
  List.iter
    (fun a ->
      check_operand a.left;
      check_operand a.right)
    body;
  { label; nvars; body }

let label dc = dc.label
let nvars dc = dc.nvars
let body dc = dc.body

let operand_ty schema = function
  | Const (Value.Int _) -> Ok `Int
  | Const (Value.Name _) -> Ok `Name
  | Attr (_, a) -> (
    match Schema.position schema a with
    | None -> Error (Printf.sprintf "unknown attribute %S" a)
    | Some i -> Ok (Schema.ty_to_poly (Schema.ty_at schema i)))

let wf schema dc =
  let atom_wf a =
    match (operand_ty schema a.left, operand_ty schema a.right) with
    | Error e, _ | _, Error e -> Error e
    | Ok tl, Ok tr ->
      if tl <> tr then Error "comparison between a name and a number"
      else if tl = `Name && a.op <> Eq && a.op <> Neq then
        Error "order comparison on name-typed operands"
      else Ok ()
  in
  List.fold_left
    (fun acc a -> match acc with Error _ -> acc | Ok () -> atom_wf a)
    (Ok ()) dc.body

let eval_operand schema assignment = function
  | Const v -> v
  | Attr (i, a) -> Tuple.get assignment.(i) (Schema.position_exn schema a)

let eval_cmp op l r =
  let c = Value.compare l r in
  match op with
  | Eq -> Value.equal l r
  | Neq -> not (Value.equal l r)
  | Lt -> c < 0
  | Gt -> c > 0
  | Leq -> c <= 0
  | Geq -> c >= 0

let holds_on schema dc assignment =
  if Array.length assignment <> dc.nvars then
    invalid_arg "Denial.holds_on: assignment length mismatch";
  List.for_all
    (fun a ->
      eval_cmp a.op
        (eval_operand schema assignment a.left)
        (eval_operand schema assignment a.right))
    dc.body

let violations schema dc r =
  (match wf schema dc with Ok () -> () | Error e -> invalid_arg e);
  let tuples = Relation.tuple_array r in
  let n = Array.length tuples in
  let assignment = Array.make dc.nvars (Tuple.make [ Value.Int 0 ]) in
  let witnesses = ref [] in
  let rec fill pos =
    if pos = dc.nvars then begin
      if holds_on schema dc assignment then begin
        let involved =
          List.sort_uniq Tuple.compare (Array.to_list assignment)
        in
        witnesses := involved :: !witnesses
      end
    end
    else
      for i = 0 to n - 1 do
        assignment.(pos) <- tuples.(i);
        fill (pos + 1)
      done
  in
  if n > 0 then fill 0;
  List.sort_uniq (List.compare Tuple.compare) !witnesses

let satisfied schema dc r = violations schema dc r = []

let of_fd schema fd =
  let eq_atoms =
    List.map (fun a -> { left = Attr (0, a); op = Eq; right = Attr (1, a) })
      (Fd.lhs fd)
  in
  List.map
    (fun b ->
      make
        ~label:(Printf.sprintf "%s (attr %s)" (Fd.to_string fd) b)
        ~nvars:2
        (eq_atoms @ [ { left = Attr (0, b); op = Neq; right = Attr (1, b) } ]))
    (Fd.rhs fd)
  |> List.filter (fun dc ->
         match wf schema dc with Ok () -> true | Error e -> invalid_arg e)

let pp_cmp ppf op =
  Format.pp_print_string ppf
    (match op with
    | Eq -> "="
    | Neq -> "!="
    | Lt -> "<"
    | Gt -> ">"
    | Leq -> "<="
    | Geq -> ">=")

let pp_operand ppf = function
  | Attr (i, a) -> Format.fprintf ppf "t%d.%s" (i + 1) a
  | Const v -> Value.pp ppf v

let pp ppf dc =
  Format.fprintf ppf "forall t1..t%d. not(%a)" dc.nvars
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " and ")
       (fun ppf a ->
         Format.fprintf ppf "%a %a %a" pp_operand a.left pp_cmp a.op pp_operand
           a.right))
    dc.body
