open Relational

type cmp = Eq | Neq | Lt | Gt | Leq | Geq

type operand = Attr of int * string | Const of Value.t

type atom = { left : operand; op : cmp; right : operand }

type t = { label : string; nvars : int; body : atom list }

let make ?(label = "denial") ~nvars body =
  if nvars < 1 then invalid_arg "Denial.make: nvars < 1";
  if body = [] then invalid_arg "Denial.make: empty body";
  let check_operand = function
    | Attr (i, _) when i < 0 || i >= nvars ->
      invalid_arg "Denial.make: tuple variable out of range"
    | Attr _ | Const _ -> ()
  in
  List.iter
    (fun a ->
      check_operand a.left;
      check_operand a.right)
    body;
  { label; nvars; body }

let label dc = dc.label
let nvars dc = dc.nvars
let body dc = dc.body

let operand_ty schema = function
  | Const (Value.Int _) -> Ok `Int
  | Const (Value.Name _) -> Ok `Name
  | Attr (_, a) -> (
    match Schema.position schema a with
    | None -> Error (Printf.sprintf "unknown attribute %S" a)
    | Some i -> Ok (Schema.ty_to_poly (Schema.ty_at schema i)))

let wf schema dc =
  let atom_wf a =
    match (operand_ty schema a.left, operand_ty schema a.right) with
    | Error e, _ | _, Error e -> Error e
    | Ok tl, Ok tr ->
      if tl <> tr then Error "comparison between a name and a number"
      else if tl = `Name && a.op <> Eq && a.op <> Neq then
        Error "order comparison on name-typed operands"
      else Ok ()
  in
  List.fold_left
    (fun acc a -> match acc with Error _ -> acc | Ok () -> atom_wf a)
    (Ok ()) dc.body

let eval_operand schema assignment = function
  | Const v -> v
  | Attr (i, a) -> Tuple.get assignment.(i) (Schema.position_exn schema a)

let eval_cmp op l r =
  let c = Value.compare l r in
  match op with
  | Eq -> Value.equal l r
  | Neq -> not (Value.equal l r)
  | Lt -> c < 0
  | Gt -> c > 0
  | Leq -> c <= 0
  | Geq -> c >= 0

let holds_on schema dc assignment =
  if Array.length assignment <> dc.nvars then
    invalid_arg "Denial.holds_on: assignment length mismatch";
  List.for_all
    (fun a ->
      eval_cmp a.op
        (eval_operand schema assignment a.left)
        (eval_operand schema assignment a.right))
    dc.body

let violations schema dc r =
  (match wf schema dc with Ok () -> () | Error e -> invalid_arg e);
  let tuples = Relation.tuple_array r in
  let n = Array.length tuples in
  let assignment = Array.make dc.nvars (Tuple.make [ Value.Int 0 ]) in
  let witnesses = ref [] in
  let rec fill pos =
    if pos = dc.nvars then begin
      if holds_on schema dc assignment then begin
        let involved =
          List.sort_uniq Tuple.compare (Array.to_list assignment)
        in
        witnesses := involved :: !witnesses
      end
    end
    else
      for i = 0 to n - 1 do
        assignment.(pos) <- tuples.(i);
        fill (pos + 1)
      done
  in
  if n > 0 then fill 0;
  List.sort_uniq (List.compare Tuple.compare) !witnesses

let satisfied schema dc r = violations schema dc r = []

(* --- postings-backed violation detection --------------------------------

   The nested scan above instantiates all n^k variable assignments. The
   joins below instead drive each variable's candidate set through the
   relation's per-column postings: an equality atom linking the variable
   to an already-assigned variable (or to a constant) becomes one
   [Relation.matching] probe, and the candidate sets intersect
   word-parallel. Atoms outside the equality fragment (and equality atoms
   between two columns of the same variable) are evaluated as filters the
   moment all their variables are assigned. A variable no equality atom
   reaches falls back to scanning the live ids — the fragment guarantee
   is per-variable, not all-or-nothing. *)

type side = Svar of int * int  (* variable, column *) | Sconst of Value.t

let compile schema dc =
  List.map
    (fun a ->
      let side = function
        | Attr (i, at) -> Svar (i, Schema.position_exn schema at)
        | Const v -> Sconst v
      in
      (side a.left, a.op, side a.right))
    dc.body

let eval_side r ass = function
  | Sconst v -> v
  | Svar (i, col) -> Tuple.get (Relation.fact r ass.(i)) col

(* Atoms are checked as soon as their last variable is assigned: for the
   variable order [order], atom vars ⊆ order[0..d] and the atom mentions
   order.(d). Constant-only atoms are checked once, up front. *)
let atom_schedule k order catoms =
  let depth_of = Array.make k 0 in
  Array.iteri (fun d j -> depth_of.(j) <- d) order;
  let slot = Array.make k [] in
  let upfront = ref [] in
  List.iter
    (fun ((l, _, r) as a) ->
      let d =
        match (l, r) with
        | Sconst _, Sconst _ -> -1
        | Svar (i, _), Sconst _ | Sconst _, Svar (i, _) -> depth_of.(i)
        | Svar (i, _), Svar (j, _) -> max depth_of.(i) depth_of.(j)
      in
      if d < 0 then upfront := a :: !upfront else slot.(d) <- a :: slot.(d))
    catoms;
  (!upfront, slot)

let violation_sets_gen schema dc r restrict order =
  (match wf schema dc with Ok () -> () | Error e -> invalid_arg e);
  let k = dc.nvars in
  let catoms = compile schema dc in
  let upfront, slot = atom_schedule k order catoms in
  let live = Relation.live_ids r in
  let ass = Array.make k (-1) in
  let assigned = Array.make k false in
  let witnesses = ref [] in
  let atom_ok (l, op, rt) =
    eval_cmp op (eval_side r ass l) (eval_side r ass rt)
  in
  if List.for_all atom_ok upfront then begin
    let rec go d =
      if d = k then
        witnesses :=
          Graphs.Vset.of_list (Array.to_list ass) :: !witnesses
      else begin
        let j = order.(d) in
        let cands =
          ref (match restrict j with Some s -> s | None -> live)
        in
        (* one postings probe per equality atom reaching variable j from
           an assigned variable or a constant *)
        List.iter
          (fun (l, op, rt) ->
            if op = Eq then
              match (l, rt) with
              | Svar (i, ci), Svar (j', cj) when j' = j && i <> j && assigned.(i)
                ->
                cands :=
                  Graphs.Vset.inter !cands
                    (Relation.matching r cj
                       (Tuple.packed_get (Relation.fact r ass.(i)) ci))
              | Svar (j', cj), Svar (i, ci) when j' = j && i <> j && assigned.(i)
                ->
                cands :=
                  Graphs.Vset.inter !cands
                    (Relation.matching r cj
                       (Tuple.packed_get (Relation.fact r ass.(i)) ci))
              | (Svar (j', cj), Sconst v | Sconst v, Svar (j', cj))
                when j' = j ->
                cands :=
                  Graphs.Vset.inter !cands
                    (Relation.matching r cj (Value.pack v))
              | _ -> ())
          catoms;
        Graphs.Vset.iter
          (fun id ->
            ass.(j) <- id;
            assigned.(j) <- true;
            if List.for_all atom_ok slot.(d) then go (d + 1);
            assigned.(j) <- false)
          !cands
      end
    in
    go 0
  end;
  List.sort_uniq Graphs.Vset.compare !witnesses

let identity_order k = Array.init k Fun.id

(* The FD-compiled shape — two variables compared column-for-column,
   equalities on the grouping columns and exactly one disequality —
   defeats the generic join: within a group that agrees on every
   equality column the probe offers the whole group as candidates and
   the single Neq filter rejects pair after pair, O(group²) on data
   whose conflicts are sparse or absent. Recognize the shape and bucket
   each group by the Neq column instead, exactly as the binary conflict
   builder does: cross-bucket pairs are the violations, O(group + edges)
   per group and zero on clean groups. *)
let fd_shape schema dc =
  if dc.nvars <> 2 then None
  else
    let eqs = ref [] and neqs = ref [] and ok = ref true in
    List.iter
      (fun a ->
        match (a.left, a.op, a.right) with
        | Attr (i, c), ((Eq | Neq) as op), Attr (j, c')
          when c = c' && ((i = 0 && j = 1) || (i = 1 && j = 0)) ->
          let pos = Schema.position_exn schema c in
          if op = Eq then eqs := pos :: !eqs else neqs := pos :: !neqs
        | _ -> ok := false)
      dc.body;
    match (!ok, List.sort_uniq compare !eqs, List.sort_uniq compare !neqs) with
    | true, eqs, [ neq ] when not (List.mem neq eqs) -> Some (eqs, neq)
    | _ -> None

let fd_violation_sets r (eqs, neq) =
  let witnesses = ref [] in
  let group_edges ids =
    match ids with
    | [] | [ _ ] -> ()
    | ids ->
      let buckets = Hashtbl.create 8 in
      List.iter
        (fun i ->
          let v = Tuple.packed_get (Relation.fact r i) neq in
          Hashtbl.replace buckets v
            (i :: Option.value ~default:[] (Hashtbl.find_opt buckets v)))
        ids;
      if Hashtbl.length buckets > 1 then begin
        let parts =
          Array.of_list (Hashtbl.fold (fun _ part acc -> part :: acc) buckets [])
        in
        for a = 0 to Array.length parts - 2 do
          List.iter
            (fun u ->
              for b = a + 1 to Array.length parts - 1 do
                List.iter
                  (fun v ->
                    witnesses := Graphs.Vset.of_list [ u; v ] :: !witnesses)
                  parts.(b)
              done)
            parts.(a)
        done
      end
  in
  (match eqs with
  | [] -> group_edges (Graphs.Vset.elements (Relation.live_ids r))
  | [ col ] ->
    (* single grouping column: the postings entries ARE the groups *)
    Relation.iter_groups r col (fun _key ids ->
        group_edges (Graphs.Vset.elements ids))
  | eqs ->
    List.iter (Relation.prepare_column r) eqs;
    let groups = Hashtbl.create 64 in
    Graphs.Vset.iter
      (fun i ->
        let key = Tuple.project_packed (Relation.fact r i) eqs in
        Hashtbl.replace groups key
          (i :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
      (Relation.live_ids r);
    Hashtbl.iter (fun _ ids -> group_edges ids) groups);
  List.sort_uniq Graphs.Vset.compare !witnesses

let violation_sets schema dc r =
  (match wf schema dc with Ok () -> () | Error e -> invalid_arg e);
  match fd_shape schema dc with
  | Some shape -> fd_violation_sets r shape
  | None ->
    violation_sets_gen schema dc r (fun _ -> None) (identity_order dc.nvars)

let violation_sets_pinned schema dc r id =
  let k = dc.nvars in
  let runs =
    List.init k (fun q ->
        (* start the join at the pinned variable so every later variable
           can probe against it *)
        let order =
          Array.of_list
            (q :: List.filter (fun j -> j <> q) (List.init k Fun.id))
        in
        violation_sets_gen schema dc r
          (fun j ->
            if j = q then
              Some
                (Graphs.Vset.inter
                   (Graphs.Vset.singleton id)
                   (Relation.live_ids r))
            else None)
          order)
  in
  List.sort_uniq Graphs.Vset.compare (List.concat runs)

let of_fd schema fd =
  let eq_atoms =
    List.map (fun a -> { left = Attr (0, a); op = Eq; right = Attr (1, a) })
      (Fd.lhs fd)
  in
  List.map
    (fun b ->
      make
        ~label:(Printf.sprintf "%s (attr %s)" (Fd.to_string fd) b)
        ~nvars:2
        (eq_atoms @ [ { left = Attr (0, b); op = Neq; right = Attr (1, b) } ]))
    (Fd.rhs fd)
  |> List.filter (fun dc ->
         match wf schema dc with Ok () -> true | Error e -> invalid_arg e)

let pp_cmp ppf op =
  Format.pp_print_string ppf
    (match op with
    | Eq -> "="
    | Neq -> "!="
    | Lt -> "<"
    | Gt -> ">"
    | Leq -> "<="
    | Geq -> ">=")

let pp_operand ppf = function
  | Attr (i, a) -> Format.fprintf ppf "t%d.%s" (i + 1) a
  | Const v -> Value.pp ppf v

let pp ppf dc =
  Format.fprintf ppf "forall t1..t%d. not(%a)" dc.nvars
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " and ")
       (fun ppf a ->
         Format.fprintf ppf "%a %a %a" pp_operand a.left pp_cmp a.op pp_operand
           a.right))
    dc.body

(* --- textual round-trip --------------------------------------------------

   The canonical form, used by the [.pref] text format and the snapshot
   codec:

     'label' forall K : t1.A = t2.A and t1.B != t2.B and t1.C > 10

   Tuple variables are 1-based (matching {!pp}), the label and name
   constants are single-quoted with [\'] and [\\] escapes, and the colon
   stands alone so whitespace tokenization round-trips. *)

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (fun c ->
      if c = '\'' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.add_char buf '\'';
  Buffer.contents buf

let cmp_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Gt -> ">"
  | Leq -> "<="
  | Geq -> ">="

let operand_to_string = function
  | Attr (i, a) -> Printf.sprintf "t%d.%s" (i + 1) a
  | Const (Value.Int n) -> string_of_int n
  | Const v -> (
    match Value.as_name v with Some s -> quote s | None -> assert false)

let to_string dc =
  Printf.sprintf "%s forall %d : %s" (quote dc.label) dc.nvars
    (String.concat " and "
       (List.map
          (fun a ->
            Printf.sprintf "%s %s %s" (operand_to_string a.left)
              (cmp_to_string a.op)
              (operand_to_string a.right))
          dc.body))

type token = Tbare of string | Tquoted of string

let lex s =
  let n = String.length s in
  let out = ref [] in
  let buf = Buffer.create 16 in
  let rec skip i = if i < n && (s.[i] = ' ' || s.[i] = '\t') then skip (i + 1) else i in
  let rec quoted i =
    if i >= n then Error "unterminated quote"
    else
      match s.[i] with
      | '\'' ->
        out := Tquoted (Buffer.contents buf) :: !out;
        Buffer.clear buf;
        token (i + 1)
      | '\\' when i + 1 < n ->
        Buffer.add_char buf s.[i + 1];
        quoted (i + 2)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  and bare i =
    if i >= n || s.[i] = ' ' || s.[i] = '\t' then begin
      out := Tbare (Buffer.contents buf) :: !out;
      Buffer.clear buf;
      token i
    end
    else begin
      Buffer.add_char buf s.[i];
      bare (i + 1)
    end
  and token i =
    let i = skip i in
    if i >= n then Ok (List.rev !out)
    else if s.[i] = '\'' then quoted (i + 1)
    else bare i
  in
  token 0

let parse_operand tok =
  match tok with
  | Tquoted s -> Ok (Const (Value.Name s))
  | Tbare s -> (
    match int_of_string_opt s with
    | Some n -> Ok (Const (Value.Int n))
    | None ->
      let bad () = Error (Printf.sprintf "bad operand %S" s) in
      if String.length s >= 4 && s.[0] = 't' then
        match String.index_opt s '.' with
        | Some dot when dot >= 2 && dot < String.length s - 1 -> (
          match int_of_string_opt (String.sub s 1 (dot - 1)) with
          | Some i when i >= 1 ->
            Ok (Attr (i - 1, String.sub s (dot + 1) (String.length s - dot - 1)))
          | _ -> bad ())
        | _ -> bad ()
      else bad ())

let parse_cmp = function
  | "=" -> Ok Eq
  | "!=" -> Ok Neq
  | "<" -> Ok Lt
  | ">" -> Ok Gt
  | "<=" -> Ok Leq
  | ">=" -> Ok Geq
  | s -> Error (Printf.sprintf "bad comparison operator %S" s)

let ( let* ) r f = match r with Error _ as e -> e | Ok x -> f x

let rec parse_atoms acc = function
  | [] -> Ok (List.rev acc)
  | l :: Tbare op :: r :: rest ->
    let* left = parse_operand l in
    let* op = parse_cmp op in
    let* right = parse_operand r in
    let atom = { left; op; right } in
    (match rest with
    | [] -> Ok (List.rev (atom :: acc))
    | Tbare "and" :: rest -> parse_atoms (atom :: acc) rest
    | _ -> Error "expected 'and' between atoms")
  | _ -> Error "expected: OPERAND CMP OPERAND"

let of_string s =
  let* toks = lex s in
  let label, toks =
    match toks with
    | Tquoted label :: rest -> (label, rest)
    | _ -> ("denial", toks)
  in
  match toks with
  | Tbare "forall" :: Tbare k :: Tbare ":" :: rest -> (
    match int_of_string_opt k with
    | Some nvars when nvars >= 1 -> (
      let* body = parse_atoms [] rest in
      match make ~label ~nvars body with
      | dc -> Ok dc
      | exception Invalid_argument m -> Error m)
    | _ -> Error (Printf.sprintf "bad variable count %S" k))
  | _ -> Error "expected: ['label'] forall K : atoms"
