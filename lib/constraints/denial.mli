(** Denial constraints.

    A denial constraint forbids a pattern of up to k tuples:

      ∀ t₁ … tₖ ∈ R. ¬(a₁ ∧ … ∧ aₘ)

    where each atom aᵢ compares an attribute of some tᵢ with an attribute
    of some tⱼ or with a constant. Functional dependencies are the special
    case k = 2; genuine denial constraints may involve a single tuple
    ("no salary above 100k") or more than two. The paper's §6 points to
    them as the future-work generalization, handled through conflict
    {e hypergraphs} [6]: a violation is a set of tuples, not a pair. *)

open Relational

type cmp = Eq | Neq | Lt | Gt | Leq | Geq

type operand =
  | Attr of int * string  (** [Attr (i, a)]: attribute [a] of tuple tᵢ (0-based) *)
  | Const of Value.t

type atom = { left : operand; op : cmp; right : operand }

type t

val make : ?label:string -> nvars:int -> atom list -> t
(** Raises [Invalid_argument] when [nvars < 1], the body is empty, or an
    atom references a tuple variable outside [0 .. nvars-1]. *)

val label : t -> string
val nvars : t -> int
val body : t -> atom list

val wf : Schema.t -> t -> (unit, string) result
(** Attributes exist and order comparisons ([<], [>], [<=], [>=]) are only
    applied to number-typed operands. *)

val holds_on : Schema.t -> t -> Tuple.t array -> bool
(** [holds_on schema dc assignment] evaluates the {e body} on an
    assignment of tuples to the variables (array of length [nvars]);
    [true] means the assignment witnesses a violation. *)

val violations : Schema.t -> t -> Relation.t -> Tuple.t list list
(** All violation witnesses as {e sets} of involved tuples (each sorted,
    de-duplicated): the hyperedges this constraint contributes to the
    conflict hypergraph. Cost O(n^k) for k = [nvars]; k is part of the
    fixed schema, not of the data. *)

val satisfied : Schema.t -> t -> Relation.t -> bool

val violation_sets : Schema.t -> t -> Relation.t -> Graphs.Vset.t list
(** {!violations} on the fact-id substrate: witnesses as sets of live
    fact ids, sorted by [Vset.compare]. Equality atoms are joined through
    the relation's per-column postings ([Relation.matching] probes
    intersected word-parallel) instead of the nested n^k scan; atoms
    outside the equality fragment are applied as filters as soon as their
    variables are assigned, and a variable no equality atom reaches falls
    back to scanning the live ids. *)

val violation_sets_pinned : Schema.t -> t -> Relation.t -> int -> Graphs.Vset.t list
(** The witnesses involving one given fact id: the join of
    {!violation_sets} restarted once per variable position with that
    variable pinned to the fact — the incremental (insert) path, which
    never rescans the unrelated part of the instance. *)

val of_fd : Schema.t -> Fd.t -> t list
(** An FD X → Y as denial constraints, one per right-hand-side attribute
    B: ∀t₁t₂ ¬(t₁.X = t₂.X ∧ t₁.B ≠ t₂.B). The union of their violation
    hyperedges equals the FD's conflict pairs. *)

val to_string : t -> string
(** Canonical text form, e.g.
    ['no-dup' forall 2 : t1.A = t2.A and t1.B != t2.B] — the label
    single-quoted (with [\'] and [\\] escapes), tuple variables 1-based,
    name constants quoted, the colon standing alone. Inverse of
    {!of_string}. *)

val of_string : string -> (t, string) result
(** Parses {!to_string}'s form. The leading quoted label is optional
    (defaults to ["denial"]). *)

val quote : string -> string
(** Single-quote a string with the escapes {!of_string} understands. *)

val pp : Format.formatter -> t -> unit
