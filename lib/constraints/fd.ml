open Relational

type t = { lhs : string list; rhs : string list }

let norm attrs = List.sort_uniq String.compare attrs

let make lhs rhs =
  if lhs = [] then invalid_arg "Fd.make: empty left-hand side";
  if rhs = [] then invalid_arg "Fd.make: empty right-hand side";
  { lhs = norm lhs; rhs = norm rhs }

let of_string s =
  match String.split_on_char '>' s with
  | [ left; right ] when String.length left > 0 && left.[String.length left - 1] = '-'
    ->
    let left = String.sub left 0 (String.length left - 1) in
    let split side =
      String.split_on_char ' ' (String.map (function ',' -> ' ' | c -> c) side)
      |> List.filter (fun w -> w <> "")
    in
    let lhs = split left and rhs = split right in
    if lhs = [] || rhs = [] then Error (Printf.sprintf "cannot parse FD %S" s)
    else Ok (make lhs rhs)
  | _ -> Error (Printf.sprintf "cannot parse FD %S (expected \"X -> Y\")" s)

let lhs fd = fd.lhs
let rhs fd = fd.rhs
let equal fd1 fd2 = fd1.lhs = fd2.lhs && fd1.rhs = fd2.rhs
let compare = Stdlib.compare
let attributes fd = norm (fd.lhs @ fd.rhs)

let wf schema fd =
  let missing =
    List.filter (fun a -> Schema.position schema a = None) (attributes fd)
  in
  match missing with
  | [] -> Ok ()
  | a :: _ ->
    Error
      (Printf.sprintf "FD mentions attribute %S absent from schema %s" a
         (Schema.name schema))

let wf_all schema fds =
  List.fold_left
    (fun acc fd -> match acc with Error _ -> acc | Ok () -> wf schema fd)
    (Ok ()) fds

let positions schema fd =
  (Schema.positions_exn schema fd.lhs, Schema.positions_exn schema fd.rhs)

let conflicting schema fd t1 t2 =
  let lpos, rpos = positions schema fd in
  (not (Tuple.equal t1 t2))
  && Tuple.agree_on t1 t2 lpos
  && not (Tuple.agree_on t1 t2 rpos)

(* Group tuples by their lhs projection; conflicts only arise inside a
   group, so consistent groups cost one pass. *)
let violations schema fd r =
  let lpos, rpos = positions schema fd in
  let groups = Hashtbl.create (Relation.cardinality r) in
  Relation.iter
    (fun t ->
      let k = Tuple.project_packed t lpos in
      let existing = Option.value (Hashtbl.find_opt groups k) ~default:[] in
      Hashtbl.replace groups k (t :: existing))
    r;
  let pairs = ref [] in
  Hashtbl.iter
    (fun _ group ->
      let group = Array.of_list group in
      let n = Array.length group in
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          if not (Tuple.agree_on group.(i) group.(j) rpos) then begin
            let a, b =
              if Tuple.compare group.(i) group.(j) <= 0 then (group.(i), group.(j))
              else (group.(j), group.(i))
            in
            pairs := (a, b) :: !pairs
          end
        done
      done)
    groups;
  let pair_compare (a1, b1) (a2, b2) =
    let c = Tuple.compare a1 a2 in
    if c <> 0 then c else Tuple.compare b1 b2
  in
  List.sort pair_compare !pairs

let satisfied schema fd r = violations schema fd r = []
let all_satisfied schema fds r = List.for_all (fun fd -> satisfied schema fd r) fds

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs
let is_trivial fd = subset fd.rhs fd.lhs

let closure schema fds x =
  List.iter
    (fun fd ->
      match wf schema fd with Ok () -> () | Error e -> invalid_arg e)
    fds;
  let rec fix acc =
    let grow acc fd =
      if subset fd.lhs acc then norm (fd.rhs @ acc) else acc
    in
    let next = List.fold_left grow acc fds in
    if List.length next = List.length acc then acc else fix next
  in
  fix (norm x)

let implies schema fds fd = subset fd.rhs (closure schema fds fd.lhs)

let is_key schema fds x =
  let u = Schema.attribute_names schema in
  subset u (closure schema fds x)

(* Subsets of the attribute list in increasing-cardinality order. *)
let subsets_by_size attrs =
  let n = List.length attrs in
  let arr = Array.of_list attrs in
  let of_mask mask =
    let rec loop i acc =
      if i < 0 then acc
      else if mask land (1 lsl i) <> 0 then loop (i - 1) (arr.(i) :: acc)
      else loop (i - 1) acc
    in
    loop (n - 1) []
  in
  let masks = List.init (1 lsl n) Fun.id in
  let popcount m =
    let rec loop m acc = if m = 0 then acc else loop (m lsr 1) (acc + (m land 1)) in
    loop m 0
  in
  List.sort (fun a b -> compare (popcount a) (popcount b)) masks
  |> List.map of_mask

let candidate_keys schema fds =
  let all = subsets_by_size (Schema.attribute_names schema) in
  let keys = ref [] in
  let minimal x =
    not (List.exists (fun k -> subset k x) !keys)
  in
  List.iter
    (fun x -> if x <> [] && minimal x && is_key schema fds x then keys := x :: !keys)
    all;
  List.sort
    (fun a b ->
      let c = compare (List.length a) (List.length b) in
      if c <> 0 then c else compare a b)
    (List.map norm !keys)

let is_bcnf schema fds =
  List.for_all
    (fun fd -> is_trivial fd || is_key schema fds fd.lhs)
    fds

let key schema x = make x (Schema.attribute_names schema)

let pp ppf fd =
  let pp_attrs =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
      Format.pp_print_string
  in
  Format.fprintf ppf "%a -> %a" pp_attrs fd.lhs pp_attrs fd.rhs

let to_string fd = Format.asprintf "%a" pp fd
