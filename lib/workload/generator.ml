open Relational
open Graphs

let ladder n =
  if n < 0 then invalid_arg "Generator.ladder: negative size";
  let schema = Schema.make "R" [ ("A", Schema.TInt); ("B", Schema.TInt) ] in
  let rows =
    List.concat_map
      (fun i -> [ [ Value.Int i; Value.Int 0 ]; [ Value.Int i; Value.Int 1 ] ])
      (List.init n Fun.id)
  in
  (Relation.of_rows schema rows, [ Constraints.Fd.make [ "A" ] [ "B" ] ])

let key_clusters ~groups ~width =
  if groups < 0 || width < 1 then invalid_arg "Generator.key_clusters";
  let schema =
    Schema.make "R"
      [ ("A", Schema.TInt); ("B", Schema.TInt); ("C", Schema.TInt) ]
  in
  let rows =
    List.concat_map
      (fun g ->
        List.map
          (fun w -> [ Value.Int g; Value.Int w; Value.Int ((g * width) + w) ])
          (List.init width Fun.id))
      (List.init groups Fun.id)
  in
  (Relation.of_rows schema rows, [ Constraints.Fd.make [ "A" ] [ "B"; "C" ] ])

(* Conflicting cliques first (low fact ids), then a clean tail: group g
   holds [width] tuples sharing A = g with pairwise-distinct B, so each
   group is a clique under A -> B; every tail tuple shares one A value
   and one B value (no conflict) and a distinct C. The FD is A -> B, not
   a key, precisely so the tail can share its left-hand side: the tail
   forms one huge consistent lhs group, which is the case the
   rhs-bucketed edge detection and the free-vertex set must keep linear. *)
let clustered_conflicts ~facts ~groups ~width =
  if facts < 0 || groups < 0 || width < 1 || groups * width > facts then
    invalid_arg "Generator.clustered_conflicts";
  let schema =
    Schema.make "R"
      [ ("A", Schema.TInt); ("B", Schema.TInt); ("C", Schema.TInt) ]
  in
  let b = Relation.Builder.create ~size_hint:facts schema in
  for g = 0 to groups - 1 do
    for w = 0 to width - 1 do
      Relation.Builder.add_row b
        [ Value.Int g; Value.Int w; Value.Int ((g * width) + w) ]
    done
  done;
  for i = groups * width to facts - 1 do
    Relation.Builder.add_row b [ Value.Int groups; Value.Int 0; Value.Int i ]
  done;
  (Relation.Builder.finish b, [ Constraints.Fd.make [ "A" ] [ "B" ] ])

(* Tuple i (1-based) pairs with i+1 on A when i is odd and on C when i is
   even; B and D alternate inside each pair, so consecutive tuples
   conflict w.r.t. alternating FDs and nothing else conflicts. *)
let chain n =
  if n < 0 then invalid_arg "Generator.chain: negative size";
  let schema =
    Schema.make "R"
      [
        ("A", Schema.TInt); ("B", Schema.TInt);
        ("C", Schema.TInt); ("D", Schema.TInt);
      ]
  in
  let row i =
    (* i ranges over 1..n *)
    [
      Value.Int ((i + 1) / 2);
      Value.Int (if i mod 2 = 1 then 1 else 2);
      Value.Int (i / 2);
      Value.Int (if i mod 2 = 0 then 1 else 2);
    ]
  in
  let rows = List.map (fun i -> row (i + 1)) (List.init n Fun.id) in
  ( Relation.of_rows schema rows,
    [ Constraints.Fd.make [ "A" ] [ "B" ]; Constraints.Fd.make [ "C" ] [ "D" ] ]
  )

(* [components] disjoint copies of [chain size], key values offset per
   copy so no conflict crosses copies: the conflict graph is a disjoint
   union of paths, the regime where sharded evaluation shines. *)
let chain_components ~components ~size =
  if components < 0 || size < 0 then invalid_arg "Generator.chain_components";
  let schema =
    Schema.make "R"
      [
        ("A", Schema.TInt); ("B", Schema.TInt);
        ("C", Schema.TInt); ("D", Schema.TInt);
      ]
  in
  let stride = size + 1 in
  let row k i =
    (* component k, tuple i in 1..size *)
    [
      Value.Int ((k * stride) + ((i + 1) / 2));
      Value.Int (if i mod 2 = 1 then 1 else 2);
      Value.Int ((k * stride) + (i / 2));
      Value.Int (if i mod 2 = 0 then 1 else 2);
    ]
  in
  let rows =
    List.concat_map
      (fun k -> List.map (fun i -> row k (i + 1)) (List.init size Fun.id))
      (List.init components Fun.id)
  in
  ( Relation.of_rows schema rows,
    [ Constraints.Fd.make [ "A" ] [ "B" ]; Constraints.Fd.make [ "C" ] [ "D" ] ]
  )

(* Cycle C_2k: tuple i has a = i/2 (pairing 2i with 2i+1 on A -> B) and
   c = ((i+1) mod 2k)/2 (pairing 2i+1 with 2i+2, wrapping, on C -> D);
   b = d = i mod 2 makes each pair conflict. *)
let mutual_cycle k =
  if k < 2 then invalid_arg "Generator.mutual_cycle: k must be >= 2";
  let schema =
    Schema.make "R"
      [
        ("A", Schema.TInt); ("B", Schema.TInt);
        ("C", Schema.TInt); ("D", Schema.TInt);
      ]
  in
  let n = 2 * k in
  let row i =
    [
      Value.Int (i / 2);
      Value.Int (i mod 2);
      Value.Int ((i + 1) mod n / 2);
      Value.Int (i mod 2);
    ]
  in
  let rows = List.map row (List.init n Fun.id) in
  ( Relation.of_rows schema rows,
    [ Constraints.Fd.make [ "A" ] [ "B" ]; Constraints.Fd.make [ "C" ] [ "D" ] ]
  )

let mutual_cycle_priority c =
  let fd_ab = Constraints.Fd.make [ "A" ] [ "B" ] in
  let schema = Core.Conflict.schema c in
  let arcs =
    List.filter_map
      (fun (u, v) ->
        let tu = Core.Conflict.tuple c u and tv = Core.Conflict.tuple c v in
        if Constraints.Fd.conflicting schema fd_ab tu tv then begin
          (* orient from the even tuple (b = 0) to the odd one (b = 1) *)
          match Value.as_int (Tuple.get tu 1) with
          | Some 0 -> Some (u, v)
          | Some _ -> Some (v, u)
          | None -> None
        end
        else None)
      (Graphs.Undirected.edges (Core.Conflict.graph c))
  in
  Core.Priority.of_arcs_exn c arcs

let mgr_example () =
  let schema =
    Schema.make "Mgr"
      [
        ("Name", Schema.TName); ("Dept", Schema.TName);
        ("Salary", Schema.TInt); ("Reports", Schema.TInt);
      ]
  in
  let tup name dept salary reports =
    Tuple.make
      [ Value.Name name; Value.Name dept; Value.Int salary; Value.Int reports ]
  in
  let t_mary_rd = tup "Mary" "R&D" 40000 3 in
  let t_john_rd = tup "John" "R&D" 10000 2 in
  let t_mary_it = tup "Mary" "IT" 20000 1 in
  let t_john_pr = tup "John" "PR" 30000 4 in
  let relation =
    Relation.of_tuples schema [ t_mary_rd; t_john_rd; t_mary_it; t_john_pr ]
  in
  let fds =
    [
      Constraints.Fd.make [ "Dept" ] [ "Name"; "Salary"; "Reports" ];
      Constraints.Fd.make [ "Name" ] [ "Dept"; "Salary"; "Reports" ];
    ]
  in
  let prov =
    Provenance.of_list
      [
        (t_mary_rd, Provenance.info ~source:"s1" ());
        (t_john_rd, Provenance.info ~source:"s2" ());
        (t_mary_it, Provenance.info ~source:"s3" ());
        (t_john_pr, Provenance.info ~source:"s3" ());
      ]
  in
  (relation, fds, prov)

let random_instance rng ~n ~key_values ~payload_values =
  if n < 0 || key_values < 1 || payload_values < 1 then
    invalid_arg "Generator.random_instance";
  let schema =
    Schema.make "R"
      [ ("A", Schema.TInt); ("B", Schema.TInt); ("C", Schema.TInt) ]
  in
  let row () =
    [
      Value.Int (Prng.int rng key_values);
      Value.Int (Prng.int rng payload_values);
      Value.Int (Prng.int rng payload_values);
    ]
  in
  let rows = List.init n (fun _ -> row ()) in
  (Relation.of_rows schema rows, [ Constraints.Fd.make [ "A" ] [ "B"; "C" ] ])

let random_two_fd_instance rng ~n ~a_values ~c_values ~v_values =
  if n < 0 || a_values < 1 || c_values < 1 || v_values < 1 then
    invalid_arg "Generator.random_two_fd_instance";
  let schema =
    Schema.make "R"
      [
        ("A", Schema.TInt); ("B", Schema.TInt);
        ("C", Schema.TInt); ("D", Schema.TInt);
      ]
  in
  let row () =
    [
      Value.Int (Prng.int rng a_values);
      Value.Int (Prng.int rng v_values);
      Value.Int (Prng.int rng c_values);
      Value.Int (Prng.int rng v_values);
    ]
  in
  let rows = List.init n (fun _ -> row ()) in
  ( Relation.of_rows schema rows,
    [ Constraints.Fd.make [ "A" ] [ "B" ]; Constraints.Fd.make [ "C" ] [ "D" ] ]
  )

let random_priority rng ~density c =
  let n = Core.Conflict.size c in
  let order = Array.init n Fun.id in
  Prng.shuffle rng order;
  let rank = Array.make n 0 in
  Array.iteri (fun i v -> rank.(v) <- i) order;
  let arcs =
    List.filter_map
      (fun (u, v) ->
        let keep =
          density >= 1.0
          || float_of_int (Prng.int rng 1_000_000) < density *. 1_000_000.
        in
        if keep then Some (if rank.(u) < rank.(v) then (u, v) else (v, u))
        else None)
      (Undirected.edges (Core.Conflict.graph c))
  in
  Core.Priority.of_arcs_exn c arcs

let random_repair rng c =
  let g = Core.Conflict.graph c in
  let order = Array.init (Core.Conflict.size c) Fun.id in
  Prng.shuffle rng order;
  Array.fold_left
    (fun acc v ->
      if Vset.is_empty (Vset.inter (Undirected.neighbors g v) acc) then
        Vset.add v acc
      else acc)
    Vset.empty order

(* --- denial workloads ---------------------------------------------------- *)

(* One shared mixed-arity constraint set over R(A, B, C, F): a 1-ary
   salary cap on B, the FD-shaped 2-ary pattern on (A, B), and a
   genuinely 3-ary "no increasing C-chain within an A-group" pattern
   that no pair of tuples can witness. The multi-tuple patterns only
   constrain flagged tuples (F = 1): the constant equality atom becomes
   a postings probe that keeps unflagged tuples out of the join
   entirely, which is what lets the consistent tail of the scale
   scenarios stay O(1) per tuple. A and F are the only columns equality
   atoms reach, so they are the only columns ever indexed — and both
   must stay low-cardinality (postings are dense [Vset]s). *)
let mixed_denials ~cap =
  let open Constraints.Denial in
  let flagged i = { left = Attr (i, "F"); op = Eq; right = Const (Value.Int 1) } in
  [
    make ~label:"cap" ~nvars:1
      [ { left = Attr (0, "B"); op = Gt; right = Const (Value.Int cap) } ];
    make ~label:"no-dup" ~nvars:2
      [
        flagged 0; flagged 1;
        { left = Attr (0, "A"); op = Eq; right = Attr (1, "A") };
        { left = Attr (0, "B"); op = Neq; right = Attr (1, "B") };
      ];
    make ~label:"no-chain" ~nvars:3
      [
        flagged 0; flagged 1; flagged 2;
        { left = Attr (0, "A"); op = Eq; right = Attr (1, "A") };
        { left = Attr (1, "A"); op = Eq; right = Attr (2, "A") };
        { left = Attr (0, "C"); op = Lt; right = Attr (1, "C") };
        { left = Attr (1, "C"); op = Lt; right = Attr (2, "C") };
      ];
  ]

let denial_cap = 1_000_000

let denial_schema () =
  Schema.make "R"
    [
      ("A", Schema.TInt); ("B", Schema.TInt); ("C", Schema.TInt);
      ("F", Schema.TInt);
    ]

(* Violating clusters at the LOW fact ids (cheap [Vset]s), one huge
   consistent tail: cluster g shares A = g and cycles through three
   shapes — pairwise 2-edges (distinct B, equal C), pure 3-edges (equal
   B, increasing C: no pair is a witness), and per-tuple singleton
   edges (every B above the cap; B equal within the cluster so no
   2-ary edge fires). Tail tuples are unflagged, share one A value and
   are distinguished only by C — which no equality atom reaches, so it
   is never indexed and the tail costs one postings miss, not a dense
   per-value [Vset]. *)
let denial_clusters ~facts ~groups ~width =
  if facts < 0 || groups < 0 || width < 1 || groups * width > facts then
    invalid_arg "Generator.denial_clusters";
  let b = Relation.Builder.create ~size_hint:facts (denial_schema ()) in
  for g = 0 to groups - 1 do
    for w = 0 to width - 1 do
      let row =
        match g mod 3 with
        | 0 -> [ Value.Int g; Value.Int w; Value.Int 0; Value.Int 1 ]
        | 1 -> [ Value.Int g; Value.Int 0; Value.Int w; Value.Int 1 ]
        | _ -> [ Value.Int g; Value.Int (denial_cap + 1); Value.Int w; Value.Int 1 ]
      in
      Relation.Builder.add_row b row
    done
  done;
  for i = groups * width to facts - 1 do
    Relation.Builder.add_row b
      [ Value.Int groups; Value.Int 0; Value.Int i; Value.Int 0 ]
  done;
  (Relation.Builder.finish b, mixed_denials ~cap:denial_cap)

(* Random mixed-arity instance (every tuple flagged). Violation density
   is driven by [a_values] (fewer A values, more co-grouped tuples) and
   [payload_values] (fewer B values, more 2-ary near-misses that leave
   room for genuine 3-edges); [cap_chance] in [0, 1] is the per-tuple
   probability of a 1-ary cap violation; [skew] concentrates A on low
   values (min of two draws) so group sizes are non-uniform. Duplicates
   collapse, so the instance may hold fewer than [n] tuples. *)
let random_denial_instance rng ~n ~a_values ~payload_values ~cap_chance ~skew =
  if
    n < 0 || a_values < 1 || payload_values < 1
    || not (cap_chance >= 0.0 && cap_chance <= 1.0)
  then invalid_arg "Generator.random_denial_instance";
  let draw_a () =
    if skew then min (Prng.int rng a_values) (Prng.int rng a_values)
    else Prng.int rng a_values
  in
  let row () =
    let over_cap =
      float_of_int (Prng.int rng 1_000_000) < cap_chance *. 1_000_000.
    in
    let payload = Prng.int rng payload_values in
    [
      Value.Int (draw_a ());
      Value.Int (if over_cap then denial_cap + 1 + payload else payload);
      Value.Int (Prng.int rng (max n 1));
      Value.Int 1;
    ]
  in
  let rows = List.init n (fun _ -> row ()) in
  (Relation.of_rows (denial_schema ()) rows, mixed_denials ~cap:denial_cap)
