(** Workload generators.

    Deterministic families of inconsistent instances exercising the
    conflict structures the paper reasons about, plus random instances and
    random priorities for property-based testing and scaling experiments.
    Each structured generator returns the instance together with the FDs
    that make it inconsistent. *)

open Relational
open Graphs

val ladder : int -> Relation.t * Constraints.Fd.t list
(** Example 4's rₙ: [{(0,0), (0,1), …, (n-1,0), (n-1,1)}] over R(A, B)
    with A → B. The conflict graph is n disjoint edges (Figure 1) and
    there are exactly 2ⁿ repairs. *)

val key_clusters : groups:int -> width:int -> Relation.t * Constraints.Fd.t list
(** One key dependency A → B C; [groups] key values with [width] mutually
    conflicting tuples each. The conflict graph is a disjoint union of
    [groups] cliques of size [width]; there are width^groups repairs. *)

val clustered_conflicts :
  facts:int -> groups:int -> width:int -> Relation.t * Constraints.Fd.t list
(** [facts] tuples over R(A, B, C) with A → B: [groups] cliques of
    [width] mutually conflicting tuples at the {e low} fact ids, followed
    by [facts - groups·width] conflict-free tuples that all share one
    left-hand-side value (one huge consistent group). Conflict density is
    controlled by [groups·width / facts]. This is the scale workload:
    million-fact instances stay linear only if singleton components are
    never materialized, unused columns are never indexed, and consistent
    groups are recognized without pairwise comparison. *)

val chain : int -> Relation.t * Constraints.Fd.t list
(** Example 9 generalized to n tuples over R(A, B, C, D) with
    F = [{A → B; C → D}]: tuple i conflicts with tuple i+1, FDs
    alternating, so the conflict graph is a path — conflicts of the two
    FDs are mutual in every interior tuple (§3.3's setting). For n = 5
    this is exactly the instance of Example 9 up to renaming of values. *)

val chain_components :
  components:int -> size:int -> Relation.t * Constraints.Fd.t list
(** [components] disjoint copies of [chain size], key values offset so
    no conflict crosses copies. The conflict graph is a disjoint union
    of [components] paths of [size] vertices — many small components,
    the regime where component-sharded evaluation beats the whole-graph
    enumerators ([Decompose] vs [Family]/[Cqa]). *)

val mutual_cycle : int -> Relation.t * Constraints.Fd.t list
(** [mutual_cycle k] builds 2k tuples over R(A, B, C, D) with
    F = [{A → B; C → D}] whose conflict graph is the cycle C_2k, edges
    alternating between the two FDs. This is the minimal realization of
    §3.3's mutual-conflict regime where S-Rep and G-Rep genuinely differ:
    orienting only the A → B edges (even tuple over odd) leaves both the
    even and the odd repair semi-globally optimal, while the even repair
    ≪-dominates the odd one, so G-Rep rejects it. Requires [k ≥ 2]
    (C₂ would be a multi-edge). *)

val mutual_cycle_priority : Core.Conflict.t -> Core.Priority.t
(** The partial priority described under {!mutual_cycle}: every A → B
    conflict oriented from the even tuple to the odd one, C → D conflicts
    left unoriented. *)

val mgr_example : unit -> Relation.t * Constraints.Fd.t list * Provenance.t
(** The running example of the paper (Examples 1–3): the Mgr relation
    integrated from sources s1, s2, s3, with both key dependencies fd1
    (Dept → rest) and fd2 (Name → rest), and provenance recording each
    tuple's source. *)

val random_instance :
  Prng.t -> n:int -> key_values:int -> payload_values:int ->
  Relation.t * Constraints.Fd.t list
(** [n] random tuples over R(A, B, C) with key A → B C: attribute A drawn
    from [key_values] values, payload from [payload_values]. Smaller
    [key_values] means denser conflicts. Duplicates collapse, so the
    instance may hold fewer than [n] tuples. *)

val random_two_fd_instance :
  Prng.t -> n:int -> a_values:int -> c_values:int -> v_values:int ->
  Relation.t * Constraints.Fd.t list
(** [n] random tuples over R(A, B, C, D) with F = [{A → B; C → D}] —
    the two-FD mutual-conflict regime of §3.3. *)

val random_priority : Prng.t -> density:float -> Core.Conflict.t -> Core.Priority.t
(** Orient each conflict edge independently with probability [density],
    directing every chosen edge from the lower to the higher position of a
    random vertex permutation — acyclicity is structural. [density >= 1.]
    yields a total priority. *)

val random_repair : Prng.t -> Core.Conflict.t -> Vset.t
(** A uniform-ish random repair: greedy maximal extension of the empty set
    scanning vertices in random order. *)

val mixed_denials : cap:int -> Constraints.Denial.t list
(** The shared mixed-arity denial set over R(A, B, C, F): a 1-ary cap
    ([B > cap]), the FD-shaped 2-ary pattern ([t1.A = t2.A],
    [t1.B != t2.B]) and a 3-ary increasing-C-chain pattern within an
    A-group that no single pair of tuples can witness. The multi-tuple
    patterns only constrain flagged tuples ([F = 1]); the constant
    equality atom keeps unflagged tuples out of the violation join. *)

val denial_cap : int
(** The cap value the denial generators build against. *)

val denial_clusters :
  facts:int -> groups:int -> width:int -> Relation.t * Constraints.Denial.t list
(** [facts] tuples over R(A, B, C, F) under {!mixed_denials}: [groups]
    violating clusters of [width] flagged tuples each at the {e low}
    fact ids, cycling through pairwise 2-edges, pure 3-edges and
    per-tuple singleton edges, followed by an unflagged conflict-free
    tail sharing one A value. The million-fact scale scenario: the
    flag probe must keep the tail out of the violation join, singleton
    components must never materialize, and the tail must land in the
    decomposition's free set. *)

val random_denial_instance :
  Prng.t -> n:int -> a_values:int -> payload_values:int -> cap_chance:float ->
  skew:bool -> Relation.t * Constraints.Denial.t list
(** [n] random flagged tuples over R(A, B, C, F) under {!mixed_denials}.
    Density is controlled by [a_values]/[payload_values], 1-ary
    violations by [cap_chance], and [skew] concentrates A values on low
    group ids so component sizes are non-uniform. *)
