type node = {
  name : string;
  total : float;
  count : int;
  args : (string * Event.arg) list;
  children : node list;
}

(* --- raw tree from the balanced stream ------------------------------------ *)

type raw = {
  rname : string;
  t0 : float;
  mutable t1 : float;
  mutable rargs : (string * Event.arg) list;
  mutable rev_children : raw list;
}

let raw_forest events =
  let roots = ref [] in
  let stack = ref [] in
  let last_ts = ref 0. in
  let attach r =
    match !stack with
    | [] -> roots := r :: !roots
    | parent :: _ -> parent.rev_children <- r :: parent.rev_children
  in
  List.iter
    (fun e ->
      last_ts := e.Event.ts;
      match e.Event.phase with
      | Event.Begin ->
        stack :=
          {
            rname = e.Event.name;
            t0 = e.Event.ts;
            t1 = e.Event.ts;
            rargs = e.Event.args;
            rev_children = [];
          }
          :: !stack
      | Event.End -> (
        match !stack with
        | [] -> () (* End with no Begin in this stream: skip *)
        | top :: rest ->
          top.t1 <- e.Event.ts;
          (* End args override/extend Begin args *)
          top.rargs <-
            List.filter
              (fun (k, _) -> not (List.mem_assoc k e.Event.args))
              top.rargs
            @ e.Event.args;
          stack := rest;
          attach top)
      | Event.Instant ->
        attach
          {
            rname = e.Event.name;
            t0 = e.Event.ts;
            t1 = e.Event.ts;
            rargs = e.Event.args;
            rev_children = [];
          })
    events;
  (* close anything left open at the last timestamp seen *)
  List.iter
    (fun r ->
      r.t1 <- !last_ts;
      attach r)
    (match !stack with
    | [] -> []
    | frames ->
      (* innermost first: attach innermost to its parent before the
         parent itself is closed *)
      stack := [];
      let rec close = function
        | [] -> []
        | [ root ] -> [ root ]
        | inner :: (parent :: _ as rest) ->
          inner.t1 <- !last_ts;
          parent.rev_children <- inner :: parent.rev_children;
          close rest
      in
      close frames);
  List.rev !roots

(* --- merging -------------------------------------------------------------- *)

let merge_args a b =
  (* integer args accumulate (counter deltas); everything else last-wins *)
  let merged =
    List.fold_left
      (fun acc (k, v) ->
        match (List.assoc_opt k acc, v) with
        | Some (Event.Int m), Event.Int n ->
          (k, Event.Int (m + n)) :: List.remove_assoc k acc
        | Some _, _ -> (k, v) :: List.remove_assoc k acc
        | None, _ -> (k, v) :: acc)
      (List.rev a) b
  in
  List.rev merged

let rec merge_raws raws =
  (* group by name, first-seen order *)
  let order = ref [] in
  let groups : (string, raw list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match Hashtbl.find_opt groups r.rname with
      | Some l -> l := r :: !l
      | None ->
        Hashtbl.add groups r.rname (ref [ r ]);
        order := r.rname :: !order)
    raws;
  List.rev_map
    (fun name ->
      let members = List.rev !(Hashtbl.find groups name) in
      let total =
        List.fold_left (fun acc r -> acc +. (r.t1 -. r.t0)) 0. members
      in
      let args =
        List.fold_left (fun acc r -> merge_args acc r.rargs) [] members
      in
      let children =
        merge_raws
          (List.concat_map (fun r -> List.rev r.rev_children) members)
      in
      { name; total; count = List.length members; args; children })
    !order
  |> List.rev

let tree events = merge_raws (raw_forest events)

let total nodes = List.fold_left (fun acc n -> acc +. n.total) 0. nodes

let flat nodes =
  let order = ref [] in
  let tbl : (string, float * int) Hashtbl.t = Hashtbl.create 16 in
  let rec go banned n =
    let counted = not (List.mem n.name banned) in
    if counted then begin
      (match Hashtbl.find_opt tbl n.name with
      | Some (t, c) -> Hashtbl.replace tbl n.name (t +. n.total, c + n.count)
      | None ->
        Hashtbl.add tbl n.name (n.total, n.count);
        order := n.name :: !order);
      List.iter (go (n.name :: banned)) n.children
    end
    else List.iter (go banned) n.children
  in
  List.iter (go []) nodes;
  List.rev_map
    (fun name ->
      let t, c = Hashtbl.find tbl name in
      (name, t, c))
    !order
  |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)

(* --- pretty printing ------------------------------------------------------ *)

let pp_time ppf seconds =
  if seconds < 1e-6 then Format.fprintf ppf "%7.1f ns" (seconds *. 1e9)
  else if seconds < 1e-3 then Format.fprintf ppf "%7.2f us" (seconds *. 1e6)
  else if seconds < 1. then Format.fprintf ppf "%7.2f ms" (seconds *. 1e3)
  else Format.fprintf ppf "%7.3f s " seconds

let pp ppf nodes =
  let grand = total nodes in
  let pct t = if grand > 0. then 100. *. t /. grand else 100. in
  let rec line depth n =
    let label = String.make (2 * depth) ' ' ^ n.name in
    Format.fprintf ppf "%-40s %a %6.1f%%" label pp_time n.total (pct n.total);
    if n.count > 1 then Format.fprintf ppf "  %dx" n.count;
    List.iter
      (fun (k, v) ->
        Format.fprintf ppf "  %s=%s" k (Event.arg_to_string v))
      n.args;
    Format.fprintf ppf "@,";
    List.iter (line (depth + 1)) n.children
  in
  Format.fprintf ppf "@[<v>";
  List.iter (line 0) nodes;
  Format.fprintf ppf "@]"
