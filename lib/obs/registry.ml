(* Named metric families and Prometheus/JSON exposition. *)

type value =
  | Counter of Metric.counter
  | Gauge of Metric.gauge
  | Gauge_fn of (unit -> float) ref
  | Histogram of Metric.histogram

type kind = KCounter | KGauge | KHistogram

let kind_name = function
  | KCounter -> "counter"
  | KGauge -> "gauge"
  | KHistogram -> "histogram"

type family = {
  name : string;
  help : string;
  kind : kind;
  (* cells in registration order, keyed by the canonical label list *)
  mutable cells : ((string * string) list * value) list;
}

type t = { lock : Mutex.t; mutable families : family list (* reversed *) }

let create () = { lock = Mutex.create (); families = [] }
let default = create ()

let valid_name n =
  String.length n > 0
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       n

let canon_labels labels =
  List.iter
    (fun (k, _) ->
      if not (valid_name k) then invalid_arg ("Registry: bad label name " ^ k))
    labels;
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

(* Get or create the cell for [name]+[labels]; [mk] builds the metric,
   [match_v] projects an existing cell back out (None = type clash). *)
let cell ~registry ~labels ~help ~name ~kind ~mk ~match_v =
  if not (valid_name name) then invalid_arg ("Registry: bad metric name " ^ name);
  let labels = canon_labels labels in
  Mutex.lock registry.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry.lock) @@ fun () ->
  let fam =
    match List.find_opt (fun f -> f.name = name) registry.families with
    | Some f ->
        if f.kind <> kind then
          invalid_arg
            (Printf.sprintf "Registry: %s already registered as %s" name
               (kind_name f.kind));
        f
    | None ->
        let f = { name; help; kind; cells = [] } in
        registry.families <- f :: registry.families;
        f
  in
  match List.assoc_opt labels fam.cells with
  | Some v -> (
      match match_v v with
      | Some x -> x
      | None -> invalid_arg ("Registry: cell type clash for " ^ name))
  | None ->
      let v, x = mk () in
      fam.cells <- fam.cells @ [ (labels, v) ];
      x

let counter ?(registry = default) ?(labels = []) ~help name =
  cell ~registry ~labels ~help ~name ~kind:KCounter
    ~mk:(fun () ->
      let c = Metric.counter () in
      (Counter c, c))
    ~match_v:(function Counter c -> Some c | _ -> None)

let gauge ?(registry = default) ?(labels = []) ~help name =
  cell ~registry ~labels ~help ~name ~kind:KGauge
    ~mk:(fun () ->
      let g = Metric.gauge () in
      (Gauge g, g))
    ~match_v:(function Gauge g -> Some g | _ -> None)

let gauge_fn ?(registry = default) ?(labels = []) ~help name f =
  cell ~registry ~labels ~help ~name ~kind:KGauge
    ~mk:(fun () -> (Gauge_fn (ref f), ()))
    ~match_v:(function Gauge_fn r -> r := f; Some () | _ -> None)

let histogram ?(registry = default) ?buckets ?(labels = []) ~help name =
  cell ~registry ~labels ~help ~name ~kind:KHistogram
    ~mk:(fun () ->
      let h = Metric.histogram ?buckets () in
      (Histogram h, h))
    ~match_v:(function Histogram h -> Some h | _ -> None)

let find ~registry ~labels name =
  let labels = canon_labels labels in
  Mutex.lock registry.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry.lock) @@ fun () ->
  match List.find_opt (fun f -> f.name = name) registry.families with
  | None -> None
  | Some f -> List.assoc_opt labels f.cells

let find_counter ?(registry = default) ?(labels = []) name =
  match find ~registry ~labels name with Some (Counter c) -> Some c | _ -> None

let find_histogram ?(registry = default) ?(labels = []) name =
  match find ~registry ~labels name with
  | Some (Histogram h) -> Some h
  | _ -> None

let clear t =
  Mutex.lock t.lock;
  t.families <- [];
  Mutex.unlock t.lock

(* A stable view for rendering: families in registration order, label
   sets canonical, callbacks not yet forced. *)
let families t =
  Mutex.lock t.lock;
  let fams = List.rev t.families in
  let fams = List.map (fun f -> (f, f.cells)) fams in
  Mutex.unlock t.lock;
  fams

(* Text exposition *)

let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Values must never expose NaN/inf: clamp non-finite to 0. *)
let fnum v =
  if not (Float.is_finite v) then "0"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let label_str labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=%S" k (escape_label_value v))
             labels)
      ^ "}"

(* Like label_str but with an extra trailing label (histogram [le]). *)
let label_str_le labels le =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k (escape_label_value v))
         labels
      @ [ Printf.sprintf "le=%S" le ])
  ^ "}"

let bound_str b = Printf.sprintf "%g" b

let render ?(registry = default) () =
  let b = Buffer.create 4096 in
  List.iter
    (fun (f, cells) ->
      Buffer.add_string b
        (Printf.sprintf "# HELP %s %s\n" f.name (escape_help f.help));
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s %s\n" f.name (kind_name f.kind));
      List.iter
        (fun (labels, v) ->
          match v with
          | Counter c ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %d\n" f.name (label_str labels)
                   (Metric.counter_value c))
          | Gauge g ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %s\n" f.name (label_str labels)
                   (fnum (Metric.gauge_value g)))
          | Gauge_fn fn ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %s\n" f.name (label_str labels)
                   (fnum (!fn ())))
          | Histogram h ->
              let snap = Metric.snapshot h in
              let cum = ref 0 in
              Array.iteri
                (fun i bound ->
                  cum := !cum + snap.Metric.counts.(i);
                  Buffer.add_string b
                    (Printf.sprintf "%s_bucket%s %d\n" f.name
                       (label_str_le labels (bound_str bound))
                       !cum))
                snap.Metric.bounds;
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" f.name
                   (label_str_le labels "+Inf") snap.Metric.count);
              Buffer.add_string b
                (Printf.sprintf "%s_sum%s %s\n" f.name (label_str labels)
                   (fnum snap.Metric.sum));
              Buffer.add_string b
                (Printf.sprintf "%s_count%s %d\n" f.name (label_str labels)
                   snap.Metric.count))
        cells)
    (families registry);
  Buffer.contents b

(* JSON exposition *)

let json_labels labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let to_json ?(registry = default) () =
  let sample labels v =
    match v with
    | Counter c ->
        Json.Obj
          [ ("labels", json_labels labels);
            ("value", Json.Int (Metric.counter_value c)) ]
    | Gauge g ->
        Json.Obj
          [ ("labels", json_labels labels);
            ("value", Json.Float (Metric.gauge_value g)) ]
    | Gauge_fn fn ->
        Json.Obj
          [ ("labels", json_labels labels); ("value", Json.Float (!fn ())) ]
    | Histogram h ->
        let snap = Metric.snapshot h in
        let buckets =
          Array.to_list
            (Array.mapi
               (fun i bound ->
                 Json.Obj
                   [ ("le", Json.Float bound);
                     ("count", Json.Int snap.Metric.counts.(i)) ])
               snap.Metric.bounds)
          @ [ Json.Obj
                [ ("le", Json.Str "+Inf");
                  ("count",
                   Json.Int snap.Metric.counts.(Array.length snap.Metric.bounds))
                ] ]
        in
        Json.Obj
          [ ("labels", json_labels labels);
            ("count", Json.Int snap.Metric.count);
            ("sum", Json.Float snap.Metric.sum);
            ("max",
             if Float.is_finite snap.Metric.max then Json.Float snap.Metric.max
             else Json.Null);
            ("buckets", Json.List buckets) ]
  in
  Json.Obj
    [ ("metrics",
       Json.List
         (List.map
            (fun (f, cells) ->
              Json.Obj
                [ ("name", Json.Str f.name);
                  ("type", Json.Str (kind_name f.kind));
                  ("help", Json.Str f.help);
                  ("samples",
                   Json.List (List.map (fun (l, v) -> sample l v) cells)) ])
            (families registry))) ]

(* Exposition lint, used by tests and the CI scrape check. *)

let lint text =
  let lines = String.split_on_char '\n' text in
  let types : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let last_bucket : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let samples = ref 0 in
  let err = ref None in
  let fail lineno msg =
    if !err = None then err := Some (Printf.sprintf "line %d: %s" lineno msg)
  in
  let base_name name =
    let strip suffix =
      if String.length name > String.length suffix
         && String.ends_with ~suffix name
      then Some (String.sub name 0 (String.length name - String.length suffix))
      else None
    in
    match (strip "_bucket", strip "_sum", strip "_count") with
    | Some base, _, _ | _, Some base, _ | _, _, Some base ->
        if Hashtbl.find_opt types base = Some "histogram" then base else name
    | None, None, None -> name
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if line = "" then ()
      else if String.length line >= 1 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: "TYPE" :: name :: ty :: [] ->
            if Hashtbl.mem types name then
              fail lineno ("duplicate TYPE for " ^ name)
            else if not (List.mem ty [ "counter"; "gauge"; "histogram" ]) then
              fail lineno ("unknown type " ^ ty)
            else Hashtbl.replace types name ty
        | "#" :: "HELP" :: _ -> ()
        | _ -> fail lineno "malformed comment line"
      end
      else begin
        (* sample line: name[{labels}] value *)
        let name_end =
          match String.index_opt line '{' with
          | Some j -> j
          | None -> (
              match String.index_opt line ' ' with
              | Some j -> j
              | None -> String.length line)
        in
        let name = String.sub line 0 name_end in
        if not (valid_name name) then fail lineno ("bad metric name " ^ name)
        else begin
          let value_str =
            match String.rindex_opt line ' ' with
            | Some j -> String.sub line (j + 1) (String.length line - j - 1)
            | None -> ""
          in
          (match float_of_string_opt value_str with
          | None -> fail lineno ("unparsable value " ^ value_str)
          | Some v -> if Float.is_nan v then fail lineno "NaN sample value");
          let base = base_name name in
          (match Hashtbl.find_opt types base with
          | None -> fail lineno ("sample without TYPE: " ^ name)
          | Some _ -> ());
          let key_end =
            match String.rindex_opt line ' ' with
            | Some j -> j
            | None -> String.length line
          in
          let key = String.sub line 0 key_end in
          if Hashtbl.mem seen key then fail lineno ("duplicate sample " ^ key)
          else Hashtbl.replace seen key ();
          (* cumulative check for histogram buckets: each cell's
             buckets are printed contiguously ending at le="+Inf", so
             track the running count per family and reset at +Inf *)
          if Hashtbl.find_opt types base = Some "histogram"
             && String.ends_with ~suffix:"_bucket" name
          then begin
            match float_of_string_opt value_str with
            | Some v ->
                let v = int_of_float v in
                (match Hashtbl.find_opt last_bucket name with
                | Some prev when v < prev ->
                    fail lineno ("non-cumulative buckets for " ^ name)
                | _ -> ());
                let is_inf =
                  (* the +Inf line closes a cell's bucket series *)
                  let needle = "le=\"+Inf\"" in
                  let n = String.length line and m = String.length needle in
                  let rec scan j =
                    j + m <= n && (String.sub line j m = needle || scan (j + 1))
                  in
                  scan 0
                in
                if is_inf then Hashtbl.remove last_bucket name
                else Hashtbl.replace last_bucket name v
            | None -> ()
          end;
          Stdlib.incr samples
        end
      end)
    lines;
  match !err with Some e -> Error e | None -> Ok !samples
