type frame = {
  name : string;
  sink : Sink.t;  (* captured at Begin, so the End reaches the same sink *)
  mutable end_args : (string * Event.arg) list;
}

(* Domain-local engine state: each domain owns its own sink switch and
   span stack, so worker domains can record into private buffers while
   the main domain streams to the session sink, with no locking on the
   hot path. A freshly spawned domain starts disabled. *)
type state = {
  mutable current : Sink.t option;
  mutable stack : frame list;
}

let key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { current = None; stack = [] })

let state () = Domain.DLS.get key

let set_sink s =
  let st = state () in
  st.current <- s;
  st.stack <- []

let sink () = (state ()).current
let enabled () = (state ()).current <> None
let now () = Unix.gettimeofday ()

let instant ?(args = []) name =
  match (state ()).current with
  | None -> ()
  | Some sink ->
    sink.Sink.emit { Event.phase = Event.Instant; name; ts = now (); args }

let annotate args =
  match (state ()).stack with
  | [] -> ()
  | frame :: _ ->
    frame.end_args <-
      List.filter (fun (k, _) -> not (List.mem_assoc k args)) frame.end_args
      @ args

let close st frame =
  (* pop down to (and including) our frame: if the bracketed code leaked
     opens — impossible through this module, but a foreign sink switch
     can orphan frames — close ours anyway, exactly once *)
  (match st.stack with
  | fr :: rest when fr == frame -> st.stack <- rest
  | other ->
    let rec drop = function
      | fr :: rest when fr == frame -> rest
      | _ :: rest -> drop rest
      | [] -> other
    in
    st.stack <- drop other);
  frame.sink.Sink.emit
    {
      Event.phase = Event.End;
      name = frame.name;
      ts = now ();
      args = frame.end_args;
    }

let with_span ?(args = []) name f =
  let st = state () in
  match st.current with
  | None -> f ()
  | Some sink ->
    sink.Sink.emit { Event.phase = Event.Begin; name; ts = now (); args };
    let frame = { name; sink; end_args = [] } in
    st.stack <- frame :: st.stack;
    (match f () with
    | v ->
      close st frame;
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      close st frame;
      Printexc.raise_with_backtrace e bt)

let depth () = List.length (state ()).stack
