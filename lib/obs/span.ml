type frame = {
  name : string;
  sink : Sink.t;  (* captured at Begin, so the End reaches the same sink *)
  mutable end_args : (string * Event.arg) list;
}

let current : Sink.t option ref = ref None
let stack : frame list ref = ref []

let set_sink s =
  current := s;
  stack := []

let sink () = !current
let enabled () = !current <> None
let now () = Unix.gettimeofday ()

let instant ?(args = []) name =
  match !current with
  | None -> ()
  | Some sink ->
    sink.Sink.emit { Event.phase = Event.Instant; name; ts = now (); args }

let annotate args =
  match !stack with
  | [] -> ()
  | frame :: _ ->
    frame.end_args <-
      List.filter (fun (k, _) -> not (List.mem_assoc k args)) frame.end_args
      @ args

let close frame =
  (* pop down to (and including) our frame: if the bracketed code leaked
     opens — impossible through this module, but a foreign sink switch
     can orphan frames — close ours anyway, exactly once *)
  (match !stack with
  | fr :: rest when fr == frame -> stack := rest
  | other ->
    let rec drop = function
      | fr :: rest when fr == frame -> rest
      | _ :: rest -> drop rest
      | [] -> other
    in
    stack := drop other);
  frame.sink.Sink.emit
    {
      Event.phase = Event.End;
      name = frame.name;
      ts = now ();
      args = frame.end_args;
    }

let with_span ?(args = []) name f =
  match !current with
  | None -> f ()
  | Some sink ->
    sink.Sink.emit { Event.phase = Event.Begin; name; ts = now (); args };
    let frame = { name; sink; end_args = [] } in
    stack := frame :: !stack;
    (match f () with
    | v ->
      close frame;
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      close frame;
      Printexc.raise_with_backtrace e bt)

let depth () = List.length !stack
