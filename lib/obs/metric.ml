(* Domain-sharded metric primitives.  See metric.mli for the memory
   model argument; the short version is that each domain writes plain
   fields of its own shard, and scrapes read racily — int and float
   fields never tear, and a scrape that misses the last few
   observations is fine for monitoring. *)

let enabled_flag = Atomic.make true
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* A per-domain shard store: [my_shard] lazily creates the calling
   domain's shard and links it into the scrape list.  The mutex only
   guards the list, not the shards. *)
type 'a shards = {
  cells : 'a list ref;
  lock : Mutex.t;
  key : 'a Domain.DLS.key;
}

let make_shards (mk : unit -> 'a) =
  let lock = Mutex.create () in
  let cells = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let s = mk () in
        Mutex.lock lock;
        cells := s :: !cells;
        Mutex.unlock lock;
        s)
  in
  { cells; lock; key }

let my_shard t = Domain.DLS.get t.key

let all_shards t =
  Mutex.lock t.lock;
  let l = !(t.cells) in
  Mutex.unlock t.lock;
  l

(* Counters *)

type counter = int ref shards

let counter () = make_shards (fun () -> ref 0)

let incr ?(by = 1) c =
  if Atomic.get enabled_flag && by <> 0 then begin
    if by < 0 then invalid_arg "Metric.incr: counters are monotonic";
    let r = my_shard c in
    r := !r + by
  end

let counter_value c = List.fold_left (fun acc r -> acc + !r) 0 (all_shards c)

(* Gauges: single atomic cell — gauges are set from one place at a
   time (a store generation, a pool width) and are cheap either way. *)

type gauge = float Atomic.t

let gauge () = Atomic.make 0.0
let set_gauge g v = if Atomic.get enabled_flag then Atomic.set g v

let add_gauge g d =
  if Atomic.get enabled_flag then begin
    let rec loop () =
      let v = Atomic.get g in
      if not (Atomic.compare_and_set g v (v +. d)) then loop ()
    in
    loop ()
  end

let gauge_value g = Atomic.get g

(* Histograms *)

let latency_buckets = Array.init 28 (fun i -> 1e-6 *. Float.of_int (1 lsl i))
let size_buckets = Array.init 16 (fun i -> 4.0 ** Float.of_int i)
let qerror_buckets = [| 0.25; 0.5; 1.0; 1.5; 2.0; 3.0; 4.0; 6.0; 8.0; 12.0; 16.0 |]

type hshard = {
  counts : int array; (* length = Array.length bounds + 1; last = +Inf *)
  mutable hsum : float;
  mutable hmax : float;
}

type histogram = { bounds : float array; hshards : hshard shards }

let check_bounds bounds =
  if Array.length bounds = 0 then invalid_arg "Metric.histogram: empty buckets";
  Array.iteri
    (fun i b ->
      if Float.is_nan b then invalid_arg "Metric.histogram: NaN bound";
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Metric.histogram: bounds must be strictly increasing")
    bounds

let histogram ?(buckets = latency_buckets) () =
  check_bounds buckets;
  let n = Array.length buckets in
  {
    bounds = Array.copy buckets;
    hshards =
      make_shards (fun () ->
          { counts = Array.make (n + 1) 0; hsum = 0.0; hmax = neg_infinity });
  }

(* First index [i] with [v <= bounds.(i)]; [n] when above every bound. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if bounds.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

let observe h v =
  if Atomic.get enabled_flag && not (Float.is_nan v) then begin
    let s = my_shard h.hshards in
    let i = bucket_index h.bounds v in
    s.counts.(i) <- s.counts.(i) + 1;
    s.hsum <- s.hsum +. v;
    if v > s.hmax then s.hmax <- v
  end

type snapshot = {
  bounds : float array;
  counts : int array;
  count : int;
  sum : float;
  max : float;
}

let snapshot (h : histogram) =
  let n = Array.length h.bounds in
  let counts = Array.make (n + 1) 0 in
  let sum = ref 0.0 and mx = ref neg_infinity in
  List.iter
    (fun (s : hshard) ->
      for i = 0 to n do
        counts.(i) <- counts.(i) + s.counts.(i)
      done;
      sum := !sum +. s.hsum;
      if s.hmax > !mx then mx := s.hmax)
    (all_shards h.hshards);
  let count = Array.fold_left ( + ) 0 counts in
  { bounds = Array.copy h.bounds; counts; count; sum = !sum; max = !mx }

let quantile snap q =
  if snap.count = 0 then nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. Float.of_int snap.count in
    let n = Array.length snap.bounds in
    let rec find i cum =
      if i > n then n
      else
        let cum' = cum + snap.counts.(i) in
        if Float.of_int cum' >= rank && snap.counts.(i) > 0 then i
        else find (i + 1) cum'
    in
    let rec cum_before i j acc =
      if j >= i then acc else cum_before i (j + 1) (acc + snap.counts.(j))
    in
    let b = find 0 0 in
    let below = cum_before b 0 0 in
    let inside = snap.counts.(b) in
    let lower = if b = 0 then 0.0 else snap.bounds.(b - 1) in
    let upper =
      if b = n then if Float.is_finite snap.max then snap.max else lower
      else snap.bounds.(b)
    in
    let v =
      if inside = 0 then upper
      else
        let frac = (rank -. Float.of_int below) /. Float.of_int inside in
        let frac = Float.max 0.0 (Float.min 1.0 frac) in
        lower +. ((upper -. lower) *. frac)
    in
    (* interpolation happens inside bucket bounds, but no estimate may
       exceed the recorded maximum — with one distinct value the rank
       walk would otherwise invent mass between it and its bound *)
    if Float.is_finite snap.max then Float.min v snap.max else v
  end
