(** Machine-readable trace export and validation.

    Two formats over the same event stream:

    - {e Chrome trace-event JSON} — an object with a ["traceEvents"]
      array of [B]/[E]/[i] records with microsecond timestamps, loadable
      in [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto};
    - {e JSONL} — one {!Event.to_json} object per line, trivially
      greppable and parseable back ({!events_of_jsonl} round-trips).

    Events recorded on pool worker domains carry a ["domain"] argument
    (see [Core]'s pool); both exporters and the validator treat that
    lane as the event's thread of execution.

    {!validate} checks the invariants a consumer relies on: well-formed
    records, and — {e per domain lane} — monotone non-decreasing
    timestamps and balanced [B]/[E] bracketing with matching names.
    Single-domain traces (no ["domain"] arguments) validate exactly as
    before, with one global clock and stack. *)

val chrome : ?process:string -> Event.t list -> Json.t
(** Timestamps are rebased to the first event and converted to
    microseconds. [process] names the trace's single process (default
    ["prefdb"]). Each domain lane becomes its own Chrome thread:
    [tid = 1 + lane], so the main domain keeps its historical [tid] 1
    and worker lanes render as parallel tracks. *)

val chrome_string : ?process:string -> Event.t list -> string

val jsonl_string : Event.t list -> string
(** One compact JSON object per line, trailing newline included (empty
    string for no events). *)

val events_of_jsonl : string -> (Event.t list, string) result
(** Inverse of {!jsonl_string}; blank lines are skipped. Errors carry
    the 1-based line number. *)

val validate : Json.t -> (int, string) result
(** Validates a parsed Chrome trace (the {!chrome} shape): every entry
    has string ["ph"]/["name"] and numeric ["ts"]; per domain lane
    (read from the entry's ["args"]/["domain"] member, default lane 0),
    timestamps are monotone non-decreasing and [B]/[E] balanced with
    matching names. Returns the number of trace events. *)

val validate_jsonl : string -> (int, string) result
(** Same invariants over a JSONL event stream. *)
