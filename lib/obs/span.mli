(** Hierarchical wall-clock spans — the instrumentation front end.

    A single global switch: with no sink installed (the default) every
    entry point is a no-op behind one branch on a [ref], so instrumented
    hot paths stay essentially free. With a sink installed,
    {!with_span} brackets a computation between a [Begin] and an [End]
    event, {!annotate} attaches key/value arguments (counter deltas,
    routes taken, sizes) to the innermost open span's [End], and
    {!instant} emits point events.

    Invariants the engine maintains (locked by the test suite):
    - every span is closed {e exactly once}, also when the bracketed
      computation raises (the exception is re-raised after the [End]);
    - [End] events appear innermost-first, so the emitted stream always
      brackets like balanced parentheses;
    - events carry non-decreasing timestamps (one clock, read in
      order).

    The engine state (installed sink + open-span stack) is {e
    domain-local}: every domain owns an independent instance, and a
    freshly spawned domain starts disabled. The parallel scheduler
    (the pool in [Core]) installs a private in-memory sink on each
    worker lane for the duration of a job and stitches the recorded
    streams — tagged with a ["domain"] argument — into the submitting
    domain's sink after the join, so per-domain attribution survives
    into the exported trace. Within one domain the engine is
    single-threaded, as before. *)

val set_sink : Sink.t option -> unit
(** [Some s] enables telemetry into [s]; [None] disables it. Switching
    sinks while spans are open closes nothing: the open spans' [End]s go
    to the {e new} sink (or nowhere), so prefer switching at quiescent
    points. *)

val sink : unit -> Sink.t option
val enabled : unit -> bool

val now : unit -> float
(** The engine's clock: [Unix.gettimeofday] (seconds). *)

val with_span :
  ?args:(string * Event.arg) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] bracketed by [Begin name]/[End name].
    Disabled: exactly [f ()] after one branch. [args] ride on the
    [Begin] event. *)

val annotate : (string * Event.arg) list -> unit
(** Attach arguments to the innermost open span's [End] event,
    replacing earlier values of the same keys. No open span or
    disabled: a no-op. *)

val instant : ?args:(string * Event.arg) list -> string -> unit

val depth : unit -> int
(** Number of currently open spans (0 when disabled). *)
