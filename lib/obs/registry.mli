(** Named metric registration and exposition.

    A registry maps metric family names to typed metrics, each family
    carrying a help string and zero or more labelled cells.  The
    accessors are get-or-create: calling {!counter} twice with the
    same registry, name and labels returns the same underlying
    {!Metric.counter}, so instrumentation sites can call them inline
    without holding module-level state.  Registering a name with a
    conflicting type raises [Invalid_argument].

    Rendering produces Prometheus text exposition format (version 0)
    or a structured JSON form built on {!Json}. *)

type t

val create : unit -> t

val default : t
(** The process-wide registry every instrumentation site in this
    code base records into. *)

(** {1 Registration (get-or-create)} *)

val counter :
  ?registry:t -> ?labels:(string * string) list -> help:string -> string ->
  Metric.counter

val gauge :
  ?registry:t -> ?labels:(string * string) list -> help:string -> string ->
  Metric.gauge

val gauge_fn :
  ?registry:t -> ?labels:(string * string) list -> help:string -> string ->
  (unit -> float) -> unit
(** A gauge computed at scrape time (uptime, configured width).
    Re-registering the same name and labels replaces the callback. *)

val histogram :
  ?registry:t -> ?buckets:float array -> ?labels:(string * string) list ->
  help:string -> string -> Metric.histogram

(** {1 Introspection} *)

val find_counter : ?registry:t -> ?labels:(string * string) list -> string ->
  Metric.counter option

val find_histogram : ?registry:t -> ?labels:(string * string) list -> string ->
  Metric.histogram option

(** {1 Exposition} *)

val render : ?registry:t -> unit -> string
(** Prometheus text format v0: one [# HELP] and [# TYPE] comment per
    family, then one sample line per cell (histograms expand into
    cumulative [_bucket] lines plus [_sum] and [_count]).  Non-finite
    values render as [0] so the exposition never carries NaN. *)

val to_json : ?registry:t -> unit -> Json.t
(** [{"metrics": [{"name", "type", "help", "samples": [...]}]}]. *)

val lint : string -> (int, string) result
(** Check a text exposition: every sample's family has a preceding
    [# TYPE] line, names are unique per family, values parse as
    finite floats (no NaN), histogram buckets are cumulative.
    Returns the number of sample lines. *)

val clear : t -> unit
(** Drop all families (tests only). *)
