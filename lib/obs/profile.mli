(** Span-tree reconstruction and the pretty-printed profile.

    Rebuilds the hierarchy from a balanced event stream and aggregates
    it for human consumption: siblings with the same span name merge
    (totals summed, occurrences counted), so a query that opened
    "decompose.component" 32 times shows one line with [32x], not 32
    lines. Integer-valued args are summed across merged occurrences
    (they carry counter deltas); other args keep the last value seen
    (routes, sizes). *)

type node = {
  name : string;
  total : float;  (** inclusive seconds, summed over merged occurrences *)
  count : int;  (** merged occurrences *)
  args : (string * Event.arg) list;
  children : node list;
}

val tree : Event.t list -> node list
(** Top-level spans of the stream, merged by name in first-seen order.
    Instant events become zero-duration leaves. Unclosed spans (possible
    only if a sink was installed mid-span) are closed at the last
    timestamp seen. *)

val total : node list -> float
(** Summed inclusive time of the given (sibling) nodes. *)

val flat : node list -> (string * float * int) list
(** Inclusive seconds and occurrence counts per span name, over
    {e outermost} occurrences only (a name nested under itself is not
    double-counted). Order: decreasing time. *)

val pp : Format.formatter -> node list -> unit
(** The profile tree: per line, span name, inclusive time, share of the
    whole tree, occurrence count and args. *)
