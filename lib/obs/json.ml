type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    if Float.is_finite f then
      (* shortest round-trippable rendering that still looks like JSON *)
      let s = Printf.sprintf "%.17g" f in
      let s =
        let short = Printf.sprintf "%.12g" f in
        if float_of_string short = f then short else s
      in
      Buffer.add_string buf s
    else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* --- parsing -------------------------------------------------------------- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
          if !pos >= n then error "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'u' ->
            if !pos + 4 > n then error "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error "invalid \\u escape"
            in
            (* enough for the control characters we emit; other code
               points pass through as '?' rather than UTF-8 machinery *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_char buf '?';
            go ()
          | _ -> error "invalid escape")
        | c -> Buffer.add_char buf c; go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
        advance ();
        go ()
      | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance ();
        go ()
      | _ -> ()
    in
    go ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error (Printf.sprintf "invalid number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        (* integer overflowing native int: fall back to float *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> error (Printf.sprintf "invalid number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> error "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | _ -> error "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | _ -> None
