let args_json args =
  Json.Obj (List.map (fun (k, v) -> (k, Event.arg_to_json v)) args)

let chrome ?(process = "prefdb") events =
  let t0 = match events with [] -> 0. | e :: _ -> e.Event.ts in
  let us ts = (ts -. t0) *. 1e6 in
  let entry e =
    let ph =
      match e.Event.phase with
      | Event.Begin -> "B"
      | Event.End -> "E"
      | Event.Instant -> "i"
    in
    let base =
      [
        ("name", Json.Str e.Event.name);
        ("cat", Json.Str "prefdb");
        ("ph", Json.Str ph);
        ("ts", Json.Float (us e.Event.ts));
        ("pid", Json.Int 1);
        ("tid", Json.Int 1);
      ]
    in
    let scope =
      match e.Event.phase with Event.Instant -> [ ("s", Json.Str "t") ] | _ -> []
    in
    let args =
      match e.Event.args with [] -> [] | a -> [ ("args", args_json a) ]
    in
    Json.Obj (base @ scope @ args)
  in
  let metadata =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.Str process) ]);
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata :: List.map entry events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let chrome_string ?process events = Json.to_string (chrome ?process events)

let jsonl_string events =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Json.to_buffer buf (Event.to_json e);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let events_of_jsonl text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if String.trim line = "" then go (lineno + 1) acc rest
      else
        match Json.of_string line with
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
        | Ok j -> (
          match Event.of_json j with
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
          | Ok ev -> go (lineno + 1) (ev :: acc) rest)
  in
  go 1 [] lines

(* --- validation ----------------------------------------------------------- *)

(* Shared checker over (ph, name, ts) triples in stream order. *)
let check_stream triples =
  let rec go i last_ts open_spans count = function
    | [] ->
      if open_spans = [] then Ok count
      else
        Error
          (Printf.sprintf "%d unclosed span(s), innermost %S"
             (List.length open_spans)
             (List.hd open_spans))
    | (ph, name, ts) :: rest -> (
      if ts < last_ts then
        Error
          (Printf.sprintf
             "event %d (%s %S): timestamp regresses (%.9f after %.9f)" i ph
             name ts last_ts)
      else
        match ph with
        | "B" -> go (i + 1) ts (name :: open_spans) (count + 1) rest
        | "E" -> (
          match open_spans with
          | [] ->
            Error (Printf.sprintf "event %d: E %S without an open span" i name)
          | top :: others ->
            if top <> name then
              Error
                (Printf.sprintf
                   "event %d: E %S does not match open span %S" i name top)
            else go (i + 1) ts others (count + 1) rest)
        | "i" | "I" -> go (i + 1) ts open_spans (count + 1) rest
        | "M" | "C" ->
          (* metadata / counter records: no bracketing, no duration *)
          go (i + 1) ts open_spans (count + 1) rest
        | other ->
          Error (Printf.sprintf "event %d: unknown phase %S" i other))
  in
  go 0 neg_infinity [] 0 triples

let triple_of_json j =
  match
    ( Json.member "ph" j,
      Json.member "name" j,
      Json.member "ts" j )
  with
  | Some (Json.Str ph), Some (Json.Str name), Some ts -> (
    match Json.to_float_opt ts with
    | Some ts -> Ok (ph, name, ts)
    | None -> Error "non-numeric \"ts\"")
  | Some (Json.Str ph), Some (Json.Str name), None when ph = "M" ->
    (* metadata records may omit ts *)
    Ok (ph, name, neg_infinity)
  | _ -> Error "entry must be an object with string \"ph\"/\"name\" and \"ts\""

let validate j =
  match Json.member "traceEvents" j with
  | Some (Json.List entries) -> (
    let rec triples i acc = function
      | [] -> Ok (List.rev acc)
      | e :: rest -> (
        match triple_of_json e with
        | Ok t -> triples (i + 1) (t :: acc) rest
        | Error msg -> Error (Printf.sprintf "traceEvents[%d]: %s" i msg))
    in
    match triples 0 [] entries with
    | Error _ as e -> e
    | Ok ts ->
      (* metadata events carry no timestamp: rebase them to the running
         clock by filtering them out of the monotonicity check *)
      check_stream (List.filter (fun (ph, _, _) -> ph <> "M") ts))
  | Some _ -> Error "\"traceEvents\" is not an array"
  | None -> Error "not a Chrome trace: no \"traceEvents\" field"

let validate_jsonl text =
  match events_of_jsonl text with
  | Error _ as e -> e
  | Ok events ->
    check_stream
      (List.map
         (fun e ->
           let ph =
             match e.Event.phase with
             | Event.Begin -> "B"
             | Event.End -> "E"
             | Event.Instant -> "i"
           in
           (ph, e.Event.name, e.Event.ts))
         events)
