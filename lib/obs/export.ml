let args_json args =
  Json.Obj (List.map (fun (k, v) -> (k, Event.arg_to_json v)) args)

(* Events recorded on a worker domain carry a ("domain", Int k) argument
   (attached when the pool stitches the worker's buffer into the session
   sink); everything else — in particular the whole main-domain stream —
   is lane 0. *)
let lane_of_args args =
  match List.assoc_opt "domain" args with
  | Some (Event.Int k) when k >= 0 -> k
  | Some _ | None -> 0

let chrome ?(process = "prefdb") events =
  let t0 = match events with [] -> 0. | e :: _ -> e.Event.ts in
  let us ts = (ts -. t0) *. 1e6 in
  let entry e =
    let ph =
      match e.Event.phase with
      | Event.Begin -> "B"
      | Event.End -> "E"
      | Event.Instant -> "i"
    in
    let base =
      [
        ("name", Json.Str e.Event.name);
        ("cat", Json.Str "prefdb");
        ("ph", Json.Str ph);
        ("ts", Json.Float (us e.Event.ts));
        ("pid", Json.Int 1);
        (* one Chrome thread per domain lane; the main domain keeps its
           historical tid 1, worker lane k shows as tid k+1 *)
        ("tid", Json.Int (1 + lane_of_args e.Event.args));
      ]
    in
    let scope =
      match e.Event.phase with Event.Instant -> [ ("s", Json.Str "t") ] | _ -> []
    in
    let args =
      match e.Event.args with [] -> [] | a -> [ ("args", args_json a) ]
    in
    Json.Obj (base @ scope @ args)
  in
  let metadata =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.Str process) ]);
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata :: List.map entry events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let chrome_string ?process events = Json.to_string (chrome ?process events)

let jsonl_string events =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Json.to_buffer buf (Event.to_json e);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let events_of_jsonl text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if String.trim line = "" then go (lineno + 1) acc rest
      else
        match Json.of_string line with
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
        | Ok j -> (
          match Event.of_json j with
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
          | Ok ev -> go (lineno + 1) (ev :: acc) rest)
  in
  go 1 [] lines

(* --- validation ----------------------------------------------------------- *)

(* Shared checker over (ph, name, ts, lane) quadruples in stream order.
   Bracketing and timestamp monotonicity are per lane: each domain reads
   its own clock and keeps its own span stack, and the pool stitches the
   worker streams in after the join, so cross-lane interleavings carry
   no ordering guarantee. A single-domain trace (every event lane 0)
   checks exactly as before. *)
let check_stream quads =
  let lanes : (int, float * string list) Hashtbl.t = Hashtbl.create 4 in
  let lane_state l =
    match Hashtbl.find_opt lanes l with
    | Some s -> s
    | None -> (neg_infinity, [])
  in
  let rec go i count = function
    | [] ->
      let leaked =
        Hashtbl.fold
          (fun lane (_, open_spans) acc ->
            match open_spans with [] -> acc | s :: _ -> (lane, s, List.length open_spans) :: acc)
          lanes []
      in
      (match leaked with
      | [] -> Ok count
      | (lane, innermost, k) :: _ ->
        Error
          (Printf.sprintf "%d unclosed span(s) on domain %d, innermost %S" k
             lane innermost))
    | (ph, name, ts, lane) :: rest -> (
      let last_ts, open_spans = lane_state lane in
      if ts < last_ts then
        Error
          (Printf.sprintf
             "event %d (%s %S): timestamp regresses on domain %d (%.9f after \
              %.9f)"
             i ph name lane ts last_ts)
      else
        match ph with
        | "B" ->
          Hashtbl.replace lanes lane (ts, name :: open_spans);
          go (i + 1) (count + 1) rest
        | "E" -> (
          match open_spans with
          | [] ->
            Error
              (Printf.sprintf "event %d: E %S without an open span on domain %d"
                 i name lane)
          | top :: others ->
            if top <> name then
              Error
                (Printf.sprintf
                   "event %d: E %S does not match open span %S on domain %d" i
                   name top lane)
            else begin
              Hashtbl.replace lanes lane (ts, others);
              go (i + 1) (count + 1) rest
            end)
        | "i" | "I" ->
          Hashtbl.replace lanes lane (ts, open_spans);
          go (i + 1) (count + 1) rest
        | "M" | "C" ->
          (* metadata / counter records: no bracketing, no duration *)
          go (i + 1) (count + 1) rest
        | other ->
          Error (Printf.sprintf "event %d: unknown phase %S" i other))
  in
  go 0 0 quads

let json_lane j =
  match Json.member "args" j with
  | Some args -> (
    match Json.member "domain" args with
    | Some (Json.Int k) when k >= 0 -> k
    | Some _ | None -> 0)
  | None -> 0

let quad_of_json j =
  match
    ( Json.member "ph" j,
      Json.member "name" j,
      Json.member "ts" j )
  with
  | Some (Json.Str ph), Some (Json.Str name), Some ts -> (
    match Json.to_float_opt ts with
    | Some ts -> Ok (ph, name, ts, json_lane j)
    | None -> Error "non-numeric \"ts\"")
  | Some (Json.Str ph), Some (Json.Str name), None when ph = "M" ->
    (* metadata records may omit ts *)
    Ok (ph, name, neg_infinity, 0)
  | _ -> Error "entry must be an object with string \"ph\"/\"name\" and \"ts\""

let validate j =
  match Json.member "traceEvents" j with
  | Some (Json.List entries) -> (
    let rec quads i acc = function
      | [] -> Ok (List.rev acc)
      | e :: rest -> (
        match quad_of_json e with
        | Ok t -> quads (i + 1) (t :: acc) rest
        | Error msg -> Error (Printf.sprintf "traceEvents[%d]: %s" i msg))
    in
    match quads 0 [] entries with
    | Error _ as e -> e
    | Ok ts ->
      (* metadata events carry no timestamp: rebase them to the running
         clock by filtering them out of the monotonicity check *)
      check_stream (List.filter (fun (ph, _, _, _) -> ph <> "M") ts))
  | Some _ -> Error "\"traceEvents\" is not an array"
  | None -> Error "not a Chrome trace: no \"traceEvents\" field"

let validate_jsonl text =
  match events_of_jsonl text with
  | Error _ as e -> e
  | Ok events ->
    check_stream
      (List.map
         (fun e ->
           let ph =
             match e.Event.phase with
             | Event.Begin -> "B"
             | Event.End -> "E"
             | Event.Instant -> "i"
           in
           (ph, e.Event.name, e.Event.ts, lane_of_args e.Event.args))
         events)
