type t = { emit : Event.t -> unit }

let null = { emit = (fun _ -> ()) }

let tee a b =
  {
    emit =
      (fun e ->
        a.emit e;
        b.emit e);
  }

module Memory = struct
  type buffer = {
    capacity : int;
    mutable rev_events : Event.t list;
    mutable length : int;
    mutable dropped : int;
    mutable open_recorded : bool list;
        (* one entry per currently open span, innermost first: was its
           Begin recorded? Pairs each End with its Begin's fate, so a
           full buffer drops whole spans instead of unbalancing. *)
  }

  let create ?(capacity = 262144) () =
    { capacity; rev_events = []; length = 0; dropped = 0; open_recorded = [] }

  let record b e =
    b.rev_events <- e :: b.rev_events;
    b.length <- b.length + 1

  let sink b =
    {
      emit =
        (fun e ->
          match e.Event.phase with
          | Event.Instant ->
            if b.length < b.capacity then record b e else b.dropped <- b.dropped + 1
          | Event.Begin ->
            let keep = b.length < b.capacity in
            b.open_recorded <- keep :: b.open_recorded;
            if keep then record b e else b.dropped <- b.dropped + 1
          | Event.End -> (
            match b.open_recorded with
            | keep :: rest ->
              b.open_recorded <- rest;
              if keep then record b e else b.dropped <- b.dropped + 1
            | [] ->
              (* an End whose Begin predates this sink: drop it *)
              b.dropped <- b.dropped + 1));
    }

  let events b = List.rev b.rev_events
  let length b = b.length
  let dropped b = b.dropped

  let clear b =
    b.rev_events <- [];
    b.length <- 0;
    b.dropped <- 0;
    b.open_recorded <- []
end
