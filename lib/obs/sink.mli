(** Pluggable event consumers.

    A sink is one function, [emit]. The span engine guarantees the
    stream it sends is balanced — every [Begin] is eventually followed
    by its [End], innermost first, even when the instrumented code
    raises — so a sink never needs to repair bracketing, only to decide
    what to keep. *)

type t = { emit : Event.t -> unit }

val null : t
(** Swallows everything, records nothing. The cheapest enabled sink;
    for measuring the engine's own overhead. *)

val tee : t -> t -> t
(** Sends each event to both. Used by the shell's [profile] command to
    feed its local tree without stealing events from a session-wide
    trace sink. *)

(** An in-memory bounded event log. *)
module Memory : sig
  type buffer

  val create : ?capacity:int -> unit -> buffer
  (** Default capacity 262144 events. Once full, new [Begin]/[Instant]
      events are dropped (and counted). The [End] of a span whose
      [Begin] was recorded is always kept — a bracket-depth stack pairs
      each [End] with its [Begin]'s fate — so a truncated log may
      overshoot its capacity by the open-span depth but is always
      balanced. [End]s of dropped or never-seen [Begin]s are dropped. *)

  val sink : buffer -> t

  val events : buffer -> Event.t list
  (** In emission order. *)

  val length : buffer -> int
  val dropped : buffer -> int

  val clear : buffer -> unit
  (** Also resets the bracket-depth stack. *)
end
