(** A minimal JSON tree, printer and parser.

    Just enough JSON for the telemetry pipeline: rendering traces
    (Chrome trace-event files, JSONL event streams, bench records) and
    reading them back for validation — no external dependency, no
    streaming, no unicode escapes beyond [\uXXXX] pass-through on input.
    Numbers without a fraction or exponent parse as [Int]; everything
    else numeric parses as [Float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string
(** Compact rendering (no insignificant whitespace). Strings are escaped;
    non-finite floats render as [null] (JSON has no NaN/inf). *)

val of_string : string -> (t, string) result
(** Parses one JSON value; trailing garbage (other than whitespace) is an
    error. Error messages carry a character offset. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing fields and non-objects. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both convert; anything else is [None]. *)
