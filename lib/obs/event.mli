(** Telemetry events.

    The wire unit of the span engine: a flat, time-ordered stream of
    begin/end/instant records. Hierarchy is implicit — a well-formed
    stream brackets like balanced parentheses ([Begin x ... End x]), and
    {!Profile.tree} rebuilds the span tree from it. Timestamps are
    absolute seconds from the span engine's clock
    ({!Span.now}); exporters rebase them. *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type phase =
  | Begin  (** a span opened *)
  | End  (** the innermost open span closed; carries its counters *)
  | Instant  (** a point event with no duration *)

type t = {
  phase : phase;
  name : string;
  ts : float;  (** seconds, absolute *)
  args : (string * arg) list;
}

val arg_to_json : arg -> Json.t
val arg_of_json : Json.t -> arg option
val arg_to_string : arg -> string

val to_json : t -> Json.t
(** [{"ph":"B"|"E"|"i","name":...,"ts":...,"args":{...}}] — the JSONL
    line shape; {!of_json} inverts it. *)

val of_json : Json.t -> (t, string) result
