type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type phase = Begin | End | Instant

type t = {
  phase : phase;
  name : string;
  ts : float;
  args : (string * arg) list;
}

let arg_to_json = function
  | Int n -> Json.Int n
  | Float f -> Json.Float f
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let arg_of_json = function
  | Json.Int n -> Some (Int n)
  | Json.Float f -> Some (Float f)
  | Json.Str s -> Some (Str s)
  | Json.Bool b -> Some (Bool b)
  | Json.Null | Json.List _ | Json.Obj _ -> None

let arg_to_string = function
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Bool b -> string_of_bool b

let phase_to_string = function Begin -> "B" | End -> "E" | Instant -> "i"

let phase_of_string = function
  | "B" -> Some Begin
  | "E" -> Some End
  | "i" -> Some Instant
  | _ -> None

let to_json e =
  let base =
    [
      ("ph", Json.Str (phase_to_string e.phase));
      ("name", Json.Str e.name);
      ("ts", Json.Float e.ts);
    ]
  in
  let args =
    match e.args with
    | [] -> []
    | args ->
      [ ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_to_json v)) args)) ]
  in
  Json.Obj (base @ args)

let of_json j =
  let field name =
    match Json.member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "event: missing field %S" name)
  in
  match (field "ph", field "name", field "ts") with
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
  | Ok ph, Ok name, Ok ts -> (
    match (ph, name, Json.to_float_opt ts) with
    | Json.Str ph, Json.Str name, Some ts -> (
      match phase_of_string ph with
      | None -> Error (Printf.sprintf "event: unknown phase %S" ph)
      | Some phase ->
        let args =
          match Json.member "args" j with
          | Some (Json.Obj fields) ->
            List.filter_map
              (fun (k, v) ->
                match arg_of_json v with
                | Some a -> Some (k, a)
                | None -> None)
              fields
          | _ -> []
        in
        Ok { phase; name; ts; args })
    | _ -> Error "event: ill-typed ph/name/ts")
