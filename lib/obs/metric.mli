(** Domain-safe metric primitives: counters, gauges and log-bucketed
    histograms.

    Counters and histograms are sharded per domain through
    {!Domain.DLS}: each domain records into its own shard with plain
    (unsynchronized) writes, so the hot path is a couple of loads and
    stores with no contention — safe under the OCaml memory model
    because word-sized writes never tear and a scrape only needs
    "some recent value" per shard.  A scrape merges all shards under
    the shard-list mutex, which is only ever taken on shard creation
    (once per domain per metric) and on scrape.

    Metrics here are anonymous values; {!Registry} names them and
    renders expositions. *)

(** {1 Global switch} *)

val set_enabled : bool -> unit
(** Turn recording on or off process-wide.  Disabled recording is a
    single atomic load and branch; scrapes still work and report
    whatever was recorded while enabled.  Enabled by default. *)

val enabled : unit -> bool

(** {1 Counters} *)

type counter

val counter : unit -> counter

val incr : ?by:int -> counter -> unit
(** [incr ~by c] adds [by] (default 1) to the calling domain's shard.
    Counters are monotonic: [by] must be non-negative. *)

val counter_value : counter -> int
(** Merged total across all shards. *)

(** {1 Gauges} *)

type gauge

val gauge : unit -> gauge
val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram : ?buckets:float array -> unit -> histogram
(** [histogram ~buckets ()] with strictly increasing upper bounds.
    An observation [v] lands in the first bucket with [v <= bound]
    (Prometheus [le] semantics); values above the last bound land in
    the implicit [+Inf] overflow bucket.  Defaults to
    {!latency_buckets}. *)

val observe : histogram -> float -> unit
(** Record one observation into the calling domain's shard.  NaN
    observations are dropped. *)

val latency_buckets : float array
(** Powers of two from 1 microsecond to ~134 seconds (28 bounds). *)

val size_buckets : float array
(** Powers of four from 1 to ~10^9 (16 bounds), for byte and row
    counts. *)

val qerror_buckets : float array
(** Bounds in log2 units for cardinality q-error histograms. *)

type snapshot = {
  bounds : float array;       (** bucket upper bounds *)
  counts : int array;         (** per-bucket counts; length = bounds + 1,
                                  last slot is the +Inf overflow *)
  count : int;                (** total observations *)
  sum : float;                (** sum of observations *)
  max : float;                (** largest observation, [neg_infinity] if none *)
}

val snapshot : histogram -> snapshot
(** Merge all shards into one immutable view. *)

val quantile : snapshot -> float -> float
(** [quantile snap q] estimates the [q]-quantile (0 <= q <= 1) by
    linear interpolation within the bucket holding the target rank;
    the overflow bucket interpolates toward the recorded maximum.
    Returns [nan] when the snapshot is empty. *)

val bucket_index : float array -> float -> int
(** The index recording would use: first [i] with [v <= bounds.(i)],
    or [Array.length bounds] for the overflow bucket.  Exposed for
    tests. *)
