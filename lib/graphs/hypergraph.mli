(** Conflict hypergraphs.

    The paper's §6 points to the generalization of conflict graphs to
    hypergraphs [6], which handle denial constraints: a single conflict may
    involve more than two tuples, so a conflict becomes a hyperedge and a
    repair becomes a maximal set containing no hyperedge in full.

    The edge store is packed: a canonical array of minimal edges plus flat
    int-array per-vertex incidence, with subset-minimality established in
    near-linear time at construction. *)

type t

val create : int -> Vset.t list -> t
(** [create n edges] builds a hypergraph on vertices [0 .. n-1]. Edges of
    cardinality 0 are rejected ([Invalid_argument]: an empty conflict would
    make every subset inconsistent). Edges of cardinality 1 are allowed and
    mean the vertex alone is inconsistent (e.g. a tuple violating a
    one-tuple denial constraint). Duplicate edges are collapsed; an edge
    that is a superset of another is dropped (it is implied). *)

val size : t -> int

val edge_count : t -> int
(** Number of minimal edges. *)

val edges : t -> Vset.t list
(** The minimal edges, ascending by [Vset.compare]. *)

val edge : t -> int -> Vset.t
(** The i-th minimal edge in that order. *)

val edges_containing : t -> int -> Vset.t list

val degree : t -> int -> int
(** Number of minimal edges containing the vertex. *)

val neighbors : t -> int -> Vset.t
(** Vertices sharing at least one edge with [v] (excluding [v]) — the
    hypergraph counterpart of [Undirected.neighbors]. *)

val covered : t -> Vset.t
(** Union of all edges. *)

val isolated : t -> Vset.t
(** Vertices in no edge: [of_range n] minus {!covered}. *)

val is_independent : t -> Vset.t -> bool
(** No hyperedge is fully contained in the set. *)

val is_maximal_independent : ?universe:Vset.t -> t -> Vset.t -> bool
(** With [universe] (default all of [0 .. n-1]), maximality is relative to
    its vertices only — the live set of an incrementally updated
    instance. *)

val enumerate : ?universe:Vset.t -> t -> Vset.t list
(** All maximal independent subsets of [universe], sorted by
    [Vset.compare]. Exponential in the worst case, like its graph
    counterpart. *)

val components : t -> Vset.t list
(** Connected components of the covered vertices (each has >= 1 edge),
    in ascending order of their smallest vertex. *)

val patch : t -> n:int -> drop:Vset.t -> add:Vset.t list -> t
(** [patch h ~n ~drop ~add]: every edge meeting [drop] dies, [add] joins
    the survivors, and the result is re-canonicalized (dedup +
    subset-minimality) on [n] vertices. Added edges must not meet [drop].
    Linear in the surviving edge store — the delta path's replacement for
    re-detecting violations from scratch. *)

val of_graph : Undirected.t -> t
(** Each graph edge becomes a 2-element hyperedge. *)

val pp : Format.formatter -> t -> unit
