(** Directed graphs over vertices [0 .. n-1].

    Priorities (paper, Def. 2) are acyclic directed edge sets laid over the
    conflict graph; this module supplies the directed-graph machinery:
    cycle detection, topological order, transitive closure, reachability. *)

type t

val create : int -> (int * int) list -> t
(** [create n arcs] builds a digraph with arcs [(u, v)] meaning [u → v].
    Self-loops are rejected; duplicate arcs are collapsed. *)

val size : t -> int
val arc_count : t -> int

val arcs : t -> (int * int) list
(** In lexicographic order. *)

val mem_arc : t -> int -> int -> bool

val succ : t -> int -> Vset.t
(** Targets of arcs leaving [v]. *)

val pred : t -> int -> Vset.t
(** Sources of arcs entering [v]. *)

val add_arc : t -> int -> int -> t
(** Functional update; the original graph is unchanged. *)

val patch : t -> n:int -> drop:Vset.t -> t
(** [patch g ~n ~drop] is a copy of [g] grown to [n] vertices
    ([n ≥ size g]) in which every arc incident to a vertex of [drop] is
    gone. Successor/predecessor sets of untouched vertices are shared
    with [g]: O(n) pointer copies plus work proportional to the dropped
    vertices' arcs — never an arc-list rebuild. *)

val has_cycle : t -> bool
(** True iff some vertex reaches itself through a non-empty path, i.e.
    the relation's transitive closure is not irreflexive. *)

val topological_order : t -> int list option
(** [Some order] listing all vertices, sources first, iff acyclic. *)

val transitive_closure : t -> t

val reachable : t -> int -> Vset.t
(** All vertices reachable from [v] through non-empty paths.
    [v] itself is included only if it lies on a cycle. *)

val restrict : t -> Vset.t -> t
(** Keep only arcs with both endpoints in the given set (vertex ids are
    preserved; the vertex count is unchanged). *)

val pp : Format.formatter -> t -> unit
