(** Enumeration of maximal independent sets.

    The repairs of an instance w.r.t. a set of functional dependencies are
    exactly the maximal independent sets of its conflict graph (paper,
    §2.1), so this enumerator is the engine behind [Core.Repair.all].

    The algorithm is Bron–Kerbosch with pivoting run on the complement
    graph without materializing it: a maximal independent set of [g] is a
    maximal clique of the complement of [g]. The pivot rule makes vertices
    without conflicts cost a single branch, so the running time is governed
    by the conflicting part of the instance only. Beware that the number of
    maximal independent sets is exponential in the worst case (Example 4 of
    the paper exhibits 2^n repairs on 2n tuples). *)

val iter : ?universe:Vset.t -> (Vset.t -> unit) -> Undirected.t -> unit
(** Calls the function once per maximal independent set, in no specified
    order. The empty graph on 0 vertices has exactly one maximal
    independent set: the empty set.

    [universe] restricts the enumeration to the induced subgraph on the
    given vertex set (default: all vertices of [g]); edges leaving the
    universe are ignored. This is how tombstoned vertices of an
    incrementally updated conflict graph are kept out of repairs. *)

val fold : ?universe:Vset.t -> (Vset.t -> 'a -> 'a) -> Undirected.t -> 'a -> 'a

val enumerate : ?universe:Vset.t -> Undirected.t -> Vset.t list
(** All maximal independent sets, sorted by [Vset.compare]. *)

val count : ?universe:Vset.t -> Undirected.t -> int

val first : ?universe:Vset.t -> Undirected.t -> Vset.t
(** One maximal independent set, computed greedily in O(n + m). *)

val exists : ?universe:Vset.t -> (Vset.t -> bool) -> Undirected.t -> bool
(** [exists p g] stops the enumeration as soon as [p] holds for some
    maximal independent set. *)

val for_all : ?universe:Vset.t -> (Vset.t -> bool) -> Undirected.t -> bool
