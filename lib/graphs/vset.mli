(** Sets of graph vertices (non-negative integers).

    This is the set representation shared by every graph structure in the
    repository: vertices of conflict graphs are indices into a tuple array,
    and repairs are vertex sets.

    The representation is a packed immutable bitset — an array of 63-bit
    words with a cached cardinality — so the intersection/difference/
    emptiness tests at the heart of repair enumeration and CQA are
    word-parallel single passes instead of balanced-tree walks. The
    interface is the fragment of [Set.S] this repository uses, with the
    same semantics; in particular {!compare} orders sets exactly like
    [Set.Make(Int).compare] (lexicographically on the increasing element
    sequences), so sorted enumerations are stable across the
    representation change. Elements must be non-negative: [add],
    [singleton], [of_list] and [of_range] raise [Invalid_argument] on a
    negative element, and [mem] of a negative element is [false]. *)

type t

val empty : t
val is_empty : t -> bool

val mem : int -> t -> bool
val add : int -> t -> t
val singleton : int -> t
val remove : int -> t -> t

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val disjoint : t -> t -> bool
(** [disjoint a b] = [is_empty (inter a b)], without materializing the
    intersection: a word-level AND scan with early exit. *)

val inter_cardinal : t -> t -> int
(** [inter_cardinal a b] = [cardinal (inter a b)], as a single
    AND-and-popcount pass with no allocation. *)

val subset : t -> t -> bool

val compare : t -> t -> int
(** Total order, identical to [Set.Make(Int).compare]: lexicographic on
    the increasing element sequences. *)

val equal : t -> t -> bool

val cardinal : t -> int
(** O(1): the cardinality is cached at construction via popcount. *)

val iter : (int -> unit) -> t -> unit
(** In increasing element order, like every traversal below. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val exists : (int -> bool) -> t -> bool
val for_all : (int -> bool) -> t -> bool
val filter : (int -> bool) -> t -> t

val map : (int -> int) -> t -> t

val elements : t -> int list

val min_elt : t -> int
(** Raises [Not_found] on the empty set, like [Set.S.min_elt]. *)

val min_elt_opt : t -> int option

val max_elt : t -> int
(** Raises [Not_found] on the empty set. *)

val max_elt_opt : t -> int option

val of_list : int list -> t

val of_range : int -> t
(** [of_range n] is [{0, 1, ..., n-1}]. [of_range 0] is [empty]. *)

(** {2 Raw word access}

    Escape hatch for word-parallel kernels ([Mis]): bit [j] of word [i]
    is element [i * word_size + j]. *)

val word_size : int
(** Bits per packed word (63 on 64-bit platforms). *)

val popcount : int -> int
(** Population count of one packed word. *)

val to_words : width:int -> t -> int array
(** A fresh word array of length [width], zero-padded. [width] must
    cover the set's maximum element. *)

val of_words : int array -> t
(** The set a word array denotes; the array is copied, not captured. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{0, 3, 5}]. *)

val to_string : t -> string

val hash : t -> int
(** A structural hash, usable to memoize on vertex sets. *)
