(* Packed immutable bitsets of non-negative ints.

   Representation: an array of 63-bit words (bit j of word i is element
   i*63 + j) with the cardinality cached at construction. The canonical
   form keeps no trailing zero words, so structural equality of the
   record coincides with set equality and the polymorphic [Hashtbl.hash]
   is usable on values of this type.

   Every inner loop of the repair/CQA stack bottoms out here, so the
   binary operations are single passes of word-parallel AND / OR /
   ANDNOT with a SWAR popcount, instead of the balanced-tree traversals
   of [Set.Make (Int)] that this module replaces. [compare] preserves
   the stdlib's ordering (lexicographic on the sorted element
   sequences), so sorted enumerations are unchanged. *)

type t = { words : int array; card : int }

let bits = 63

(* SWAR popcount on the 63-bit word domain. The masks exceed [max_int]
   as literals, so they are assembled from 32-bit halves; the truncation
   of the top (64th) bit is harmless because inputs carry at most 63
   bits and all byte sums stay below 128. *)
let m1 = (0x55555555 lsl 32) lor 0x55555555
let m2 = (0x33333333 lsl 32) lor 0x33333333
let m4 = (0x0F0F0F0F lsl 32) lor 0x0F0F0F0F
let h01 = (0x01010101 lsl 32) lor 0x01010101

let popcount x =
  let x = x - ((x lsr 1) land m1) in
  let x = (x land m2) + ((x lsr 2) land m2) in
  let x = (x + (x lsr 4)) land m4 in
  (x * h01) lsr 56

(* Index of the lowest set bit of a non-zero word. *)
let lowest_bit x = popcount ((x land -x) - 1)

let empty = { words = [||]; card = 0 }

(* Drop trailing zero words; [card] is the already-known cardinality. *)
let trimmed words card =
  let n = ref (Array.length words) in
  while !n > 0 && words.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then empty
  else if !n = Array.length words then { words; card }
  else { words = Array.sub words 0 !n; card }

let is_empty s = s.card = 0
let cardinal s = s.card

let check_elt v =
  if v < 0 then invalid_arg "Vset: negative element"

let mem v s =
  v >= 0
  &&
  let w = v / bits in
  w < Array.length s.words && s.words.(w) land (1 lsl (v mod bits)) <> 0

let add v s =
  check_elt v;
  if mem v s then s
  else begin
    let w = v / bits in
    let len = Array.length s.words in
    let words = Array.make (max len (w + 1)) 0 in
    Array.blit s.words 0 words 0 len;
    words.(w) <- words.(w) lor (1 lsl (v mod bits));
    { words; card = s.card + 1 }
  end

let singleton v = add v empty

let remove v s =
  if not (mem v s) then s
  else begin
    let words = Array.copy s.words in
    let w = v / bits in
    words.(w) <- words.(w) land lnot (1 lsl (v mod bits));
    trimmed words (s.card - 1)
  end

let union a b =
  if a.card = 0 then b
  else if b.card = 0 then a
  else begin
    let big, small =
      if Array.length a.words >= Array.length b.words then (a, b) else (b, a)
    in
    let words = Array.copy big.words in
    let card = ref big.card in
    for i = 0 to Array.length small.words - 1 do
      let w = words.(i) lor small.words.(i) in
      card := !card + popcount (w lxor words.(i));
      words.(i) <- w
    done;
    { words; card = !card }
  end

let inter a b =
  let l = min (Array.length a.words) (Array.length b.words) in
  if l = 0 then empty
  else begin
    let words = Array.make l 0 in
    let card = ref 0 in
    for i = 0 to l - 1 do
      let w = a.words.(i) land b.words.(i) in
      words.(i) <- w;
      card := !card + popcount w
    done;
    trimmed words !card
  end

let diff a b =
  let la = Array.length a.words in
  let l = min la (Array.length b.words) in
  if l = 0 then a
  else begin
    let words = Array.copy a.words in
    let card = ref a.card in
    for i = 0 to l - 1 do
      let w = words.(i) land lnot b.words.(i) in
      card := !card - popcount (words.(i) lxor w);
      words.(i) <- w
    done;
    trimmed words !card
  end

(* --- specialized single-pass predicates --------------------------------- *)

let disjoint a b =
  let l = min (Array.length a.words) (Array.length b.words) in
  let rec go i = i >= l || (a.words.(i) land b.words.(i) = 0 && go (i + 1)) in
  go 0

let inter_cardinal a b =
  let l = min (Array.length a.words) (Array.length b.words) in
  let c = ref 0 in
  for i = 0 to l - 1 do
    c := !c + popcount (a.words.(i) land b.words.(i))
  done;
  !c

let subset a b =
  a.card <= b.card
  && Array.length a.words <= Array.length b.words
  &&
  let rec go i =
    i >= Array.length a.words
    || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1))
  in
  go 0

let equal a b =
  a.card = b.card
  && Array.length a.words = Array.length b.words
  &&
  let rec go i =
    i >= Array.length a.words || (a.words.(i) = b.words.(i) && go (i + 1))
  in
  go 0

(* The stdlib Set order: lexicographic comparison of the increasing
   element sequences. Locate the smallest differing element m; the set
   holding m is smaller, unless the other set has nothing beyond m — in
   the canonical form "some element > m" is "a higher set bit in the
   same word, or a later word" (the last word is never zero). *)
let compare a b =
  let la = Array.length a.words and lb = Array.length b.words in
  let word s i = if i < Array.length s.words then s.words.(i) else 0 in
  let rec go i =
    if i >= la && i >= lb then 0
    else
      let wa = word a i and wb = word b i in
      if wa = wb then go (i + 1)
      else begin
        let j = lowest_bit (wa lxor wb) in
        let beyond w len =
          (if j = bits - 1 then false else w lsr (j + 1) <> 0) || i + 1 < len
        in
        if wa land (1 lsl j) <> 0 then if beyond wb lb then -1 else 1
        else if beyond wa la then 1
        else -1
      end
  in
  go 0

(* --- iteration (always in increasing element order) --------------------- *)

let iter f s =
  for i = 0 to Array.length s.words - 1 do
    let w = ref s.words.(i) in
    while !w <> 0 do
      let lsb = !w land - !w in
      f ((i * bits) + popcount (lsb - 1));
      w := !w lxor lsb
    done
  done

let fold f s acc =
  let acc = ref acc in
  iter (fun v -> acc := f v !acc) s;
  !acc

exception Short_circuit

let exists p s =
  try
    iter (fun v -> if p v then raise Short_circuit) s;
    false
  with Short_circuit -> true

let for_all p s = not (exists (fun v -> not (p v)) s)

let filter p s =
  if s.card = 0 then empty
  else begin
    let words = Array.copy s.words in
    let card = ref s.card in
    iter
      (fun v ->
        if not (p v) then begin
          words.(v / bits) <- words.(v / bits) land lnot (1 lsl (v mod bits));
          decr card
        end)
      s;
    trimmed words !card
  end

let map f s = fold (fun v acc -> add (f v) acc) s empty
let elements s = List.rev (fold (fun v acc -> v :: acc) s [])

let min_elt s =
  if s.card = 0 then raise Not_found;
  let rec go i =
    if s.words.(i) <> 0 then (i * bits) + lowest_bit s.words.(i) else go (i + 1)
  in
  go 0

let min_elt_opt s = if s.card = 0 then None else Some (min_elt s)

let max_elt s =
  if s.card = 0 then raise Not_found;
  let i = Array.length s.words - 1 in
  let w = s.words.(i) in
  let rec hi j = if w land (1 lsl j) <> 0 then j else hi (j - 1) in
  (i * bits) + hi (bits - 1)

let max_elt_opt s = if s.card = 0 then None else Some (max_elt s)

let of_list l =
  let mx = List.fold_left (fun m v -> check_elt v; max m v) (-1) l in
  if mx < 0 then empty
  else begin
    let words = Array.make ((mx / bits) + 1) 0 in
    List.iter
      (fun v -> words.(v / bits) <- words.(v / bits) lor (1 lsl (v mod bits)))
      l;
    let card = Array.fold_left (fun acc w -> acc + popcount w) 0 words in
    { words; card }
  end

let of_range n =
  if n <= 0 then empty
  else begin
    let full = n / bits and rest = n mod bits in
    let all_ones = (1 lsl (bits - 1)) lor ((1 lsl (bits - 1)) - 1) in
    let words = Array.make (full + if rest = 0 then 0 else 1) all_ones in
    if rest <> 0 then words.(full) <- (1 lsl rest) - 1;
    { words; card = n }
  end

(* --- raw word access, for word-parallel kernels -------------------------- *)

let word_size = bits

let to_words ~width s =
  let a = Array.make width 0 in
  Array.blit s.words 0 a 0 (Array.length s.words);
  a

let of_words a =
  let card = Array.fold_left (fun acc w -> acc + popcount w) 0 a in
  trimmed (Array.copy a) card

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (elements s)

let to_string s = Format.asprintf "%a" pp s

let hash s = fold (fun v acc -> (acc * 1000003) + v + 1) s 0
