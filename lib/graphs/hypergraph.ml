(* Packed conflict hypergraphs.

   Representation: the minimal edge set lives twice — as an array of
   [Vset]s in canonical order (for the word-parallel subset tests every
   independence check bottoms out in) and as one flat [verts] array
   sliced by [starts] (for cheap vertex iteration without decoding a
   bitset). Per-vertex incidence is a flat int array of edge ids sliced
   by [inc_starts] — the hypergraph counterpart of [Undirected]'s packed
   adjacency.

   Subset-minimality is established once, in near-linear time: edges are
   processed in ascending cardinality and an edge is implied exactly
   when some already-kept edge hits it |e'| times across its member
   vertices' incidence lists (counted with a timestamped scratch array),
   instead of the quadratic all-pairs [Vset.subset] filter this
   replaces. *)

type t = {
  n : int;
  edge_sets : Vset.t array;  (* minimal, deduped, ascending Vset.compare *)
  starts : int array;  (* edge id -> slice of [verts]; length edges+1 *)
  verts : int array;  (* concatenated ascending vertex lists *)
  inc_starts : int array;  (* vertex -> slice of [inc]; length n+1 *)
  inc : int array;  (* incident edge ids, ascending per vertex *)
  covered : Vset.t;  (* union of all edges *)
}

(* Canonicalization sorts edges twice ([Vset.compare] order is the
   contract on [edge_sets]), and comparing small sparse sets as dense
   word arrays scans every shared zero word of the bitmaps — under
   thousands of two-element edges the comparisons dominated the whole
   build. So each edge travels with its decoded vertex list: for the
   increasing element sequences, [List.compare Int.compare] IS the
   stdlib-Set lexicographic order [Vset.compare] implements, and it
   stops at the first differing element. *)
let lex_compare la lb = List.compare Int.compare la lb

(* Keep only the subset-minimal edges of a deduplicated
   [(card, elements, set)] list; returns [(elements, set)] pairs in
   ascending canonical order. *)
let minimal_edges n distinct =
  let edges = Array.of_list distinct in
  Array.sort
    (fun (ca, la, _) (cb, lb, _) ->
      let c = compare (ca : int) cb in
      if c <> 0 then c else lex_compare la lb)
    edges;
  let m = Array.length edges in
  let kept_card = Array.make m 0 in
  let kept = Array.make m ([], Vset.empty) in
  let nkept = ref 0 in
  let inc = Array.make (max 1 n) [] in
  (* hits.(k) counts, for the edge under test, how many of its vertices
     the kept edge k contains; [stamp] invalidates stale counts so the
     scratch arrays are never cleared *)
  let hits = Array.make m 0 in
  let stamp = Array.make m (-1) in
  for ei = 0 to m - 1 do
    let card, elts, e = edges.(ei) in
    let implied = ref false in
    List.iter
      (fun v ->
        if not !implied then
          List.iter
            (fun k ->
              if stamp.(k) <> ei then begin
                stamp.(k) <- ei;
                hits.(k) <- 0
              end;
              hits.(k) <- hits.(k) + 1;
              (* distinct edges of equal cardinality are never subsets,
                 so a full hit count means a strictly smaller kept edge *)
              if hits.(k) = kept_card.(k) then implied := true)
            inc.(v))
      elts;
    if not !implied then begin
      let k = !nkept in
      kept.(k) <- (elts, e);
      kept_card.(k) <- card;
      incr nkept;
      List.iter (fun v -> inc.(v) <- k :: inc.(v)) elts
    end
  done;
  let out = Array.sub kept 0 !nkept in
  Array.sort (fun (la, _) (lb, _) -> lex_compare la lb) out;
  out

let pack n minimal =
  let m = Array.length minimal in
  let starts = Array.make (m + 1) 0 in
  for i = 0 to m - 1 do
    let elts, _ = minimal.(i) in
    starts.(i + 1) <- starts.(i) + List.length elts
  done;
  let verts = Array.make starts.(m) 0 in
  let covered = ref Vset.empty in
  Array.iteri
    (fun i (elts, e) ->
      covered := Vset.union !covered e;
      let j = ref starts.(i) in
      List.iter
        (fun v ->
          verts.(!j) <- v;
          incr j)
        elts)
    minimal;
  let deg = Array.make (n + 1) 0 in
  Array.iter (fun v -> deg.(v) <- deg.(v) + 1) verts;
  let inc_starts = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    inc_starts.(v + 1) <- inc_starts.(v) + deg.(v)
  done;
  let fill = Array.copy inc_starts in
  let inc = Array.make inc_starts.(n) 0 in
  Array.iteri
    (fun i (elts, _) ->
      List.iter
        (fun v ->
          inc.(fill.(v)) <- i;
          fill.(v) <- fill.(v) + 1)
        elts)
    minimal;
  {
    n;
    edge_sets = Array.map snd minimal;
    starts;
    verts;
    inc_starts;
    inc;
    covered = !covered;
  }

(* Dedup, minimalize and pack: shared tail of [create] and [patch].
   Each raw edge is decoded once; all ordering below runs on the
   element lists. *)
let canonicalize n raw_edges =
  let decorated =
    List.map
      (fun e ->
        let elts = Vset.elements e in
        (List.length elts, elts, e))
      raw_edges
  in
  let distinct =
    List.sort_uniq (fun (_, la, _) (_, lb, _) -> lex_compare la lb) decorated
  in
  pack n (minimal_edges n distinct)

let create n raw_edges =
  if n < 0 then invalid_arg "Hypergraph.create: negative size";
  List.iter
    (fun e ->
      if Vset.is_empty e then invalid_arg "Hypergraph.create: empty edge";
      Vset.iter
        (fun v ->
          if v < 0 || v >= n then
            invalid_arg "Hypergraph.create: vertex out of range")
        e)
    raw_edges;
  canonicalize n raw_edges

let size h = h.n
let edge_count h = Array.length h.edge_sets
let edge h i = h.edge_sets.(i)
let edges h = Array.to_list h.edge_sets
let covered h = h.covered
let isolated h = Vset.diff (Vset.of_range h.n) h.covered

let iter_incident h v f =
  for j = h.inc_starts.(v) to h.inc_starts.(v + 1) - 1 do
    f h.inc.(j)
  done

let edges_containing h v =
  if v < 0 || v >= h.n then invalid_arg "Hypergraph.edges_containing";
  let acc = ref [] in
  iter_incident h v (fun i -> acc := h.edge_sets.(i) :: !acc);
  List.rev !acc

let degree h v =
  if v < 0 || v >= h.n then invalid_arg "Hypergraph.degree";
  h.inc_starts.(v + 1) - h.inc_starts.(v)

let neighbors h v =
  if v < 0 || v >= h.n then invalid_arg "Hypergraph.neighbors";
  let acc = ref Vset.empty in
  iter_incident h v (fun i -> acc := Vset.union !acc h.edge_sets.(i));
  Vset.remove v !acc

let is_independent h s =
  not (Array.exists (fun e -> Vset.subset e s) h.edge_sets)

(* v can be added to independent s iff no edge becomes fully contained. *)
let addable h s v =
  (not (Vset.mem v s))
  && not
       (let bad = ref false in
        iter_incident h v (fun i ->
            if
              (not !bad)
              && Vset.subset (Vset.remove v h.edge_sets.(i)) s
            then bad := true);
        !bad)

let is_maximal_independent ?universe h s =
  is_independent h s
  &&
  match universe with
  | None ->
    let ok = ref true in
    for v = 0 to h.n - 1 do
      if !ok && addable h s v then ok := false
    done;
    !ok
  | Some u -> not (Vset.exists (fun v -> addable h s v) (Vset.diff u s))

let enumerate ?universe h =
  (* Branch on an uncovered edge, excluding one of its vertices; at each
     leaf the excluded set is a transversal, so its complement is
     independent; keep only the maximal ones and de-duplicate. Every
     maximal independent set M is reached along the branch that always
     excludes a vertex of V \ M. With a [universe] (the live vertices of
     an incrementally updated instance), only edges inside it can ever
     be fully contained, and candidates are intersected with it. *)
  let all =
    match universe with Some u -> u | None -> Vset.of_range h.n
  in
  let active =
    match universe with
    | None -> Array.to_list h.edge_sets
    | Some u ->
      List.filter (fun e -> Vset.subset e u) (Array.to_list h.edge_sets)
  in
  let seen = Hashtbl.create 64 in
  let results = ref [] in
  let rec go excluded = function
    | [] ->
      let candidate = Vset.diff all excluded in
      if
        is_maximal_independent ?universe h candidate
        && not (Hashtbl.mem seen candidate)
      then begin
        Hashtbl.replace seen candidate ();
        results := candidate :: !results
      end
    | e :: rest ->
      if Vset.is_empty (Vset.inter e excluded) then
        Vset.iter (fun v -> go (Vset.add v excluded) rest) e
      else go excluded rest
  in
  go Vset.empty active;
  List.sort Vset.compare !results

let components h =
  let seen = ref Vset.empty in
  let comps = ref [] in
  for v = 0 to h.n - 1 do
    if Vset.mem v h.covered && not (Vset.mem v !seen) then begin
      let rec grow frontier comp =
        if Vset.is_empty frontier then comp
        else begin
          let comp = Vset.union comp frontier in
          let next =
            Vset.fold
              (fun u acc -> Vset.union acc (neighbors h u))
              frontier Vset.empty
          in
          grow (Vset.diff next comp) comp
        end
      in
      let comp = grow (Vset.singleton v) Vset.empty in
      seen := Vset.union !seen comp;
      comps := comp :: !comps
    end
  done;
  List.rev !comps

let patch h ~n ~drop ~add =
  (* Every edge meeting [drop] dies; [add] joins the survivors and the
     whole set is re-canonicalized (dedup + subset-minimality — an added
     edge may subsume another added edge). The rebuild is linear in the
     total vertex count of the surviving edges, not in the cost of
     re-detecting violations, which is what the callers are avoiding. *)
  if n < 0 then invalid_arg "Hypergraph.patch: negative size";
  List.iter
    (fun e ->
      if Vset.is_empty e then invalid_arg "Hypergraph.patch: empty edge";
      if not (Vset.is_empty (Vset.inter e drop)) then
        invalid_arg "Hypergraph.patch: added edge meets the dropped set";
      Vset.iter
        (fun v ->
          if v < 0 || v >= n then
            invalid_arg "Hypergraph.patch: vertex out of range")
        e)
    add;
  let survivors =
    Array.fold_left
      (fun acc e -> if Vset.disjoint e drop then e :: acc else acc)
      [] h.edge_sets
  in
  canonicalize n (List.rev_append survivors add)

let of_graph g =
  let edges =
    List.map (fun (u, v) -> Vset.of_list [ u; v ]) (Undirected.edges g)
  in
  create (Undirected.size g) edges

let pp ppf h =
  Format.fprintf ppf "@[<v>hypergraph on %d vertices:@," h.n;
  Array.iter (fun e -> Format.fprintf ppf "  %a@," Vset.pp e) h.edge_sets;
  Format.fprintf ppf "@]"
