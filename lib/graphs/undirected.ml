type t = { n : int; adj : Vset.t array; m : int }

let check_vertex n v =
  if v < 0 || v >= n then
    invalid_arg (Printf.sprintf "Undirected: vertex %d out of range [0,%d)" v n)

(* Distinct edges, after the duplicate collapsing of [Vset.add]. *)
let count_edges adj =
  Array.fold_left (fun acc s -> acc + Vset.cardinal s) 0 adj / 2

let create n edge_list =
  if n < 0 then invalid_arg "Undirected.create: negative size";
  let adj = Array.make n Vset.empty in
  let add_edge (u, v) =
    check_vertex n u;
    check_vertex n v;
    if u = v then invalid_arg "Undirected.create: self-loop";
    adj.(u) <- Vset.add v adj.(u);
    adj.(v) <- Vset.add u adj.(v)
  in
  List.iter add_edge edge_list;
  { n; adj; m = count_edges adj }

let size g = g.n

let neighbors g v =
  check_vertex g.n v;
  g.adj.(v)

let vicinity g v = Vset.add v (neighbors g v)
let degree g v = Vset.cardinal (neighbors g v)
let mem_edge g u v = Vset.mem v (neighbors g u)

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    let higher = Vset.filter (fun v -> v > u) g.adj.(u) in
    Vset.iter (fun v -> acc := (u, v) :: !acc) higher
  done;
  List.sort compare !acc

let edge_count g = g.m
let vertices g = Vset.of_range g.n

let isolated g =
  Vset.filter (fun v -> Vset.is_empty g.adj.(v)) (vertices g)

let is_independent g s =
  Vset.for_all (fun v -> Vset.disjoint g.adj.(v) s) s

let is_maximal_independent g s =
  is_independent g s
  &&
  (* every outside vertex has a neighbour inside — a plain loop, to skip
     materializing [vertices g] *)
  let rec covered v =
    v >= g.n
    || ((Vset.mem v s || not (Vset.disjoint g.adj.(v) s)) && covered (v + 1))
  in
  covered 0

let induced g s =
  let mapping = Array.of_list (Vset.elements s) in
  let back = Hashtbl.create (Array.length mapping) in
  Array.iteri (fun i v -> Hashtbl.replace back v i) mapping;
  let edge_list = ref [] in
  Array.iteri
    (fun i v ->
      Vset.iter
        (fun w ->
          match Hashtbl.find_opt back w with
          | Some j when i < j -> edge_list := (i, j) :: !edge_list
          | Some _ | None -> ())
        g.adj.(v))
    mapping;
  (create (Array.length mapping) !edge_list, mapping)

let connected_components g =
  let seen = Array.make g.n false in
  let component start =
    let rec visit v acc =
      if seen.(v) then acc
      else begin
        seen.(v) <- true;
        Vset.fold visit g.adj.(v) (Vset.add v acc)
      end
    in
    visit start Vset.empty
  in
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    if not seen.(v) then acc := component v :: !acc
  done;
  (* Visiting from high to low and prepending yields increasing order of
     smallest vertex because each component is discovered from a vertex
     that may not be its smallest; sort to make the order canonical. *)
  List.sort (fun a b -> compare (Vset.min_elt a) (Vset.min_elt b)) !acc

let is_clique g s =
  Vset.for_all
    (fun u -> Vset.for_all (fun v -> u = v || mem_edge g u v) s)
    s

let patch g ~n ~drop ~add =
  if n < g.n then invalid_arg "Undirected.patch: vertex count cannot shrink";
  let adj = Array.make n Vset.empty in
  Array.blit g.adj 0 adj 0 g.n;
  (* distinct edges incident to a dropped vertex: degree sum counts
     drop-internal edges twice, [inner] counts each of those twice too *)
  let deg_sum =
    Vset.fold (fun v acc -> acc + Vset.cardinal g.adj.(v)) drop 0
  in
  let inner =
    Vset.fold
      (fun v acc -> acc + Vset.cardinal (Vset.inter g.adj.(v) drop))
      drop 0
  in
  Vset.iter
    (fun v ->
      check_vertex g.n v;
      Vset.iter (fun u -> adj.(u) <- Vset.remove v adj.(u)) g.adj.(v);
      adj.(v) <- Vset.empty)
    drop;
  let added = ref 0 in
  List.iter
    (fun (u, v) ->
      check_vertex n u;
      check_vertex n v;
      if u = v then invalid_arg "Undirected.patch: self-loop";
      if Vset.mem u drop || Vset.mem v drop then
        invalid_arg "Undirected.patch: edge on a dropped vertex";
      if not (Vset.mem v adj.(u)) then begin
        incr added;
        adj.(u) <- Vset.add v adj.(u);
        adj.(v) <- Vset.add u adj.(v)
      end)
    add;
  { n; adj; m = g.m - (deg_sum - (inner / 2)) + !added }

let union g1 g2 =
  if g1.n <> g2.n then invalid_arg "Undirected.union: size mismatch";
  let adj = Array.init g1.n (fun v -> Vset.union g1.adj.(v) g2.adj.(v)) in
  { n = g1.n; adj; m = count_edges adj }

let pp ppf g =
  Format.fprintf ppf "@[<v>graph on %d vertices:@," g.n;
  List.iter (fun (u, v) -> Format.fprintf ppf "  %d -- %d@," u v) (edges g);
  Format.fprintf ppf "@]"
