(* Bron–Kerbosch with pivoting, phrased for independent sets.

   In clique terms on the complement graph: the complement-neighbourhood of
   a vertex [v] is co(v) = V \ ({v} ∪ n(v)).  The branch set at a node with
   candidates P and excluded X is P \ co(u) = P ∩ ({u} ∪ n(u)) for the
   pivot u, so a pivot with few conflict-neighbours inside P is best; in
   particular an isolated pivot yields a single branch. *)

exception Stop

(* The recursion runs on raw mutable word arrays in [Vset]'s packed
   layout rather than on [Vset.t] values: P and X are bit masks updated
   with AND-NOT, the pivot is an intersect-and-popcount scan, and a
   [Vset.t] is materialized only at each leaf. Each recursion node owns
   its own P and X arrays (fresh copies are made for every branch), so
   the in-place updates of the classic loop are safe; the growing
   independent set R is a single shared array with bits set and cleared
   around each recursive call. *)
let iter ?universe f g =
  let n = Undirected.size g in
  let universe =
    match universe with Some u -> u | None -> Vset.of_range n
  in
  if n = 0 then f Vset.empty
  else begin
    let ws = Vset.word_size in
    let w = ((n - 1) / ws) + 1 in
    (* vic.(v) = {v} ∪ n(v), the paper's v(v), as a padded word array. *)
    let vic =
      Array.init n (fun v -> Vset.to_words ~width:w (Undirected.vicinity g v))
    in
    let r = Array.make w 0 in
    let inter_card a b =
      let c = ref 0 in
      for i = 0 to w - 1 do
        c := !c + Vset.popcount (a.(i) land b.(i))
      done;
      !c
    in
    let is_empty a =
      let rec go i = i >= w || (a.(i) = 0 && go (i + 1)) in
      go 0
    in
    let rec extend p x =
      if is_empty p && is_empty x then f (Vset.of_words r)
      else begin
        (* Minimize |P ∩ vic(u)| over u ∈ P ∪ X. *)
        let pivot = ref (-1) and best = ref max_int in
        for i = 0 to w - 1 do
          let m = ref (p.(i) lor x.(i)) in
          while !m <> 0 do
            let lsb = !m land - !m in
            let s = inter_card p vic.((i * ws) + Vset.popcount (lsb - 1)) in
            if s < !best then begin
              best := s;
              pivot := (i * ws) + Vset.popcount (lsb - 1)
            end;
            m := !m lxor lsb
          done
        done;
        (* Branch over P ∩ vic(pivot): recurse on P, X stripped of
           vic(v), then move v from P to X. *)
        let pv = vic.(!pivot) in
        for i = 0 to w - 1 do
          let m = ref (p.(i) land pv.(i)) in
          while !m <> 0 do
            let lsb = !m land - !m in
            let vv = vic.((i * ws) + Vset.popcount (lsb - 1)) in
            let p' = Array.make w 0 and x' = Array.make w 0 in
            for k = 0 to w - 1 do
              p'.(k) <- p.(k) land lnot vv.(k);
              x'.(k) <- x.(k) land lnot vv.(k)
            done;
            r.(i) <- r.(i) lor lsb;
            extend p' x';
            r.(i) <- r.(i) land lnot lsb;
            p.(i) <- p.(i) land lnot lsb;
            x.(i) <- x.(i) lor lsb;
            m := !m lxor lsb
          done
        done
      end
    in
    extend (Vset.to_words ~width:w universe) (Array.make w 0)
  end

let fold ?universe f g acc =
  let acc = ref acc in
  iter ?universe (fun s -> acc := f s !acc) g;
  !acc

let enumerate ?universe g =
  List.sort Vset.compare (fold ?universe (fun s acc -> s :: acc) g [])

let count ?universe g = fold ?universe (fun _ acc -> acc + 1) g 0

let first ?universe g =
  let universe =
    match universe with Some u -> u | None -> Undirected.vertices g
  in
  Vset.fold
    (fun v acc ->
      if Vset.disjoint (Undirected.neighbors g v) acc then Vset.add v acc
      else acc)
    universe Vset.empty

let exists ?universe p g =
  try
    iter ?universe (fun s -> if p s then raise Stop) g;
    false
  with Stop -> true

let for_all ?universe p g = not (exists ?universe (fun s -> not (p s)) g)
