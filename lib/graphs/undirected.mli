(** Undirected graphs over vertices [0 .. n-1].

    The conflict graph of an inconsistent database instance (paper, §2.1)
    is represented with this structure: vertices are tuples and edges join
    conflicting tuples. The representation is immutable once built. *)

type t

val create : int -> (int * int) list -> t
(** [create n edges] builds a graph with [n] vertices and the given edges.
    Self-loops are rejected ([Invalid_argument]); duplicate and symmetric
    duplicates of edges are collapsed. Vertices must lie in [0 .. n-1]. *)

val size : t -> int
(** Number of vertices. *)

val edge_count : t -> int
(** O(1): counted once at {!create} (called on every consistency check). *)

val edges : t -> (int * int) list
(** Each undirected edge reported once, as [(u, v)] with [u < v],
    in lexicographic order. *)

val mem_edge : t -> int -> int -> bool

val neighbors : t -> int -> Vset.t
(** [neighbors g v] is the paper's n(v): all vertices adjacent to [v]. *)

val vicinity : t -> int -> Vset.t
(** [vicinity g v] is the paper's v(v) = [{v} ∪ n(v)]. *)

val degree : t -> int -> int

val vertices : t -> Vset.t

val isolated : t -> Vset.t
(** Vertices with no incident edge (tuples involved in no conflict). *)

val is_independent : t -> Vset.t -> bool
(** No two members are adjacent. *)

val is_maximal_independent : t -> Vset.t -> bool
(** Independent, and every outside vertex is adjacent to a member.
    Maximal independent sets are exactly the repairs (paper, §2.1). *)

val induced : t -> Vset.t -> t * int array
(** [induced g s] is the subgraph induced by [s] together with the map
    from new vertex ids to original ids. *)

val connected_components : t -> Vset.t list
(** Components in increasing order of their smallest vertex. *)

val is_clique : t -> Vset.t -> bool

val union : t -> t -> t
(** Union of edge sets; both graphs must have the same size. *)

val patch : t -> n:int -> drop:Vset.t -> add:(int * int) list -> t
(** [patch g ~n ~drop ~add] is the incremental-update counterpart of
    {!create}: a copy of [g] grown to [n] vertices ([n ≥ size g]) in
    which every edge incident to a vertex of [drop] is gone and the
    [add] edges are present. Adjacency sets of untouched vertices are
    shared with [g], so the cost is O(n) pointer copies plus work
    proportional to the touched vertices — never a full edge-list
    rebuild. [add] edges must avoid dropped vertices and self-loops
    ([Invalid_argument]). *)

val pp : Format.formatter -> t -> unit
