type t = { n : int; succ : Vset.t array; pred : Vset.t array }

let check_vertex n v =
  if v < 0 || v >= n then
    invalid_arg (Printf.sprintf "Digraph: vertex %d out of range [0,%d)" v n)

let create n arc_list =
  if n < 0 then invalid_arg "Digraph.create: negative size";
  let succ = Array.make n Vset.empty in
  let pred = Array.make n Vset.empty in
  let add (u, v) =
    check_vertex n u;
    check_vertex n v;
    if u = v then invalid_arg "Digraph.create: self-loop";
    succ.(u) <- Vset.add v succ.(u);
    pred.(v) <- Vset.add u pred.(v)
  in
  List.iter add arc_list;
  { n; succ; pred }

let size g = g.n

let succ g v =
  check_vertex g.n v;
  g.succ.(v)

let pred g v =
  check_vertex g.n v;
  g.pred.(v)

let mem_arc g u v = Vset.mem v (succ g u)

let arcs g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    Vset.iter (fun v -> acc := (u, v) :: !acc) g.succ.(u)
  done;
  List.sort compare !acc

let arc_count g =
  Array.fold_left (fun acc s -> acc + Vset.cardinal s) 0 g.succ

let add_arc g u v =
  check_vertex g.n u;
  check_vertex g.n v;
  if u = v then invalid_arg "Digraph.add_arc: self-loop";
  let succ = Array.copy g.succ and pred = Array.copy g.pred in
  succ.(u) <- Vset.add v succ.(u);
  pred.(v) <- Vset.add u pred.(v);
  { g with succ; pred }

let patch g ~n ~drop =
  if n < g.n then invalid_arg "Digraph.patch: vertex count cannot shrink";
  let succ = Array.make n Vset.empty in
  let pred = Array.make n Vset.empty in
  Array.blit g.succ 0 succ 0 g.n;
  Array.blit g.pred 0 pred 0 g.n;
  Vset.iter
    (fun v ->
      check_vertex g.n v;
      Vset.iter (fun u -> pred.(u) <- Vset.remove v pred.(u)) succ.(v);
      Vset.iter (fun u -> succ.(u) <- Vset.remove v succ.(u)) pred.(v);
      succ.(v) <- Vset.empty;
      pred.(v) <- Vset.empty)
    drop;
  { n; succ; pred }

(* Three-colour DFS: 0 unvisited, 1 on the stack, 2 done. *)
let has_cycle g =
  let colour = Array.make g.n 0 in
  let exception Cycle in
  let rec visit v =
    match colour.(v) with
    | 1 -> raise Cycle
    | 2 -> ()
    | _ ->
      colour.(v) <- 1;
      Vset.iter visit g.succ.(v);
      colour.(v) <- 2
  in
  try
    for v = 0 to g.n - 1 do
      if colour.(v) = 0 then visit v
    done;
    false
  with Cycle -> true

let topological_order g =
  let colour = Array.make g.n 0 in
  let order = ref [] in
  let exception Cycle in
  let rec visit v =
    match colour.(v) with
    | 1 -> raise Cycle
    | 2 -> ()
    | _ ->
      colour.(v) <- 1;
      Vset.iter visit g.succ.(v);
      colour.(v) <- 2;
      order := v :: !order
  in
  try
    for v = 0 to g.n - 1 do
      if colour.(v) = 0 then visit v
    done;
    Some !order
  with Cycle -> None

let reachable g start =
  let seen = ref Vset.empty in
  let rec visit v =
    if not (Vset.mem v !seen) then begin
      seen := Vset.add v !seen;
      Vset.iter visit g.succ.(v)
    end
  in
  Vset.iter visit g.succ.(start);
  !seen

let transitive_closure g =
  let arcs = ref [] in
  for u = 0 to g.n - 1 do
    Vset.iter (fun v -> arcs := (u, v) :: !arcs) (reachable g u)
  done;
  create g.n !arcs

let restrict g s =
  let keep = List.filter (fun (u, v) -> Vset.mem u s && Vset.mem v s) (arcs g) in
  create g.n keep

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph on %d vertices:@," g.n;
  List.iter (fun (u, v) -> Format.fprintf ppf "  %d -> %d@," u v) (arcs g);
  Format.fprintf ppf "@]"
